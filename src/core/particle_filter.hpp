#pragma once
/// \file particle_filter.hpp
/// \brief Monte Carlo localization with the paper's four parallel phases.
///
/// The filter estimates the planar pose (x, y, θ) of the nano-UAV on an
/// occupancy-grid map from sparse multizone-ToF beams and drifting
/// odometry (paper Section III-C). Its update cycle has four phases, each
/// parallelized by statically chunking the particle array — the exact
/// scheme used on the 8 GAP9 worker cores:
///
///   1. motion update       — sample p(x_t | x_{t-1}, u_t), Gaussian noise
///                            σ_odom on the body-frame odometry delta
///   2. observation update  — beam end-point model (Eq. 1) against the
///                            truncated EDT (direct exp or 8-bit LUT)
///   3. resampling          — systematic wheel; per-chunk partial weight
///                            sums let every chunk draw its own arrows
///                            (Fig 4), bit-identical to the serial wheel
///   4. pose computation    — weighted mean, circular mean for yaw
///
/// Particles live in structure-of-arrays storage (particle_soa.hpp) so the
/// per-particle kernels stream unit-stride over each field and vectorize;
/// phases 1 and 2 are additionally available fused into one pass
/// (motion_observation_update) so a correction touches the particle state
/// once instead of twice. Both the fusion and the SoA layout are pure
/// re-orderings of memory traffic: every particle still sees the exact
/// arithmetic (and per-chunk RNG stream) of the phase-by-phase path, so
/// results are bit-identical to it.
///
/// Given a fixed chunk count, results are bit-identical on every executor;
/// threads only change wall-clock. Per-chunk RNG streams make the whole
/// filter reproducible from MclConfig::seed.
///
/// Template parameter `Traits` selects the paper's design points:
/// Fp32Traits, Fp32QmTraits, Fp16QmTraits (Section III-C2).

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "core/likelihood.hpp"
#include "core/mcl_config.hpp"
#include "core/particle.hpp"
#include "core/particle_soa.hpp"
#include "fp16/half.hpp"
#include "map/distance_map.hpp"
#include "sensor/beam_model.hpp"

namespace tofmcl::core {

/// fp32: float particles, float EDT.
struct Fp32Traits {
  using Scalar = float;
  using Map = map::DistanceMap;
  using ObservationModel = DirectObservationModel;
  static constexpr Precision kPrecision = Precision::kFp32;
};

/// fp32qm: float particles, 8-bit quantized EDT with likelihood LUT.
struct Fp32QmTraits {
  using Scalar = float;
  using Map = map::QuantizedDistanceMap;
  using ObservationModel = LutObservationModel;
  static constexpr Precision kPrecision = Precision::kFp32Qm;
};

/// fp16qm: fp16 particles, 8-bit quantized EDT with likelihood LUT.
struct Fp16QmTraits {
  using Scalar = Half;
  using Map = map::QuantizedDistanceMap;
  using ObservationModel = LutObservationModel;
  static constexpr Precision kPrecision = Precision::kFp16Qm;
};

/// Filter output: the weighted-average pose plus dispersion measures used
/// for convergence monitoring.
struct PoseEstimate {
  Pose2 pose{};
  /// √(weighted variance of position), meters — small once converged.
  double position_stddev = 0.0;
  /// Length of the mean yaw resultant in [0, 1]; 1 = all particles agree.
  double yaw_concentration = 0.0;
  bool valid = false;
};

/// Workload of the most recent update cycle (consumed by the GAP9 timing
/// model and the benches).
struct UpdateWorkload {
  std::size_t particles = 0;
  std::size_t beams = 0;
  /// Beams the novelty gate excluded from the weight product (and with it
  /// the Augmented-MCL monitor) this update. Always 0 with gating off.
  std::size_t gated_beams = 0;
  /// Whether the novelty gate was armed for this update (estimate valid
  /// and tight enough) — diagnostics for tuning the arming criterion.
  bool novelty_armed = false;
};

/// State of the Augmented-MCL likelihood monitor (Probabilistic Robotics
/// §8.3), exposed for diagnostics and regression tests. Averages are of
/// the per-beam-normalized observation likelihood, so they are comparable
/// across beam counts and stay finite for arbitrarily many beams.
struct InjectionMonitor {
  double w_slow = 0.0;         ///< Long-term average likelihood.
  double w_fast = 0.0;         ///< Short-term average likelihood.
  double last_inject_p = 0.0;  ///< Injection fraction of the last resample.
};

template <typename Traits>
class ParticleFilter {
 public:
  using Scalar = typename Traits::Scalar;
  using Map = typename Traits::Map;
  using ParticleT = Particle<Scalar>;
  using ObservationModel = typename Traits::ObservationModel;

  /// The map must outlive the filter.
  ParticleFilter(const Map& map, const MclConfig& config, Executor& executor)
      : ParticleFilter(map, config, executor,
                       ObservationModel(map, beam_model_params(config))) {}

  /// Variant taking a prebuilt observation model (e.g. a shared likelihood
  /// LUT from a campaign's per-map resources). The model must reference
  /// the same `map`.
  ParticleFilter(const Map& map, const MclConfig& config, Executor& executor,
                 ObservationModel observation_model)
      : map_(&map),
        config_(config),
        executor_(&executor),
        observation_model_(std::move(observation_model)) {
    TOFMCL_EXPECTS(config.num_particles > 0, "need at least one particle");
    TOFMCL_EXPECTS(config.chunks > 0 && config.chunks <= kMaxChunks,
                   "chunk count must be in [1, 64]");
    TOFMCL_EXPECTS(config.sigma_obs > 0.0, "sigma_obs must be positive");
    TOFMCL_EXPECTS(config.z_hit + config.z_rand > 0.0,
                   "z_hit + z_rand must be positive");
    TOFMCL_EXPECTS(config.z_short >= 0.0, "z_short must be non-negative");
    TOFMCL_EXPECTS(config.lambda_short > 0.0,
                   "lambda_short must be positive");
    TOFMCL_EXPECTS(config.novelty_margin_m > 0.0,
                   "novelty_margin_m must be positive");
    // Folding the per-beam normalizer into the observation kernel keeps
    // weights of well-matched particles near 1 regardless of beam count
    // (see observation_update). Exactly 1.0 when z_hit + z_rand == 1.
    per_beam_scale_ =
        static_cast<float>(1.0 / (config_.z_hit + config_.z_rand));
    mixture_params_ = beam_model_params(config_);
    particles_.resize(config_.num_particles);
    back_buffer_.resize(config_.num_particles);
    chunk_sums_.resize(config_.chunks);
    chunk_sq_sums_.resize(config_.chunks);
    Rng master(config_.seed);
    rngs_.reserve(config_.chunks);
    for (std::size_t c = 0; c < config_.chunks; ++c) {
      rngs_.push_back(master.fork());
    }
    resample_rng_ = master.fork();
  }

  const MclConfig& config() const { return config_; }
  const Map& map() const { return *map_; }
  /// AoS-style read view over the SoA storage (see particle_soa.hpp).
  ParticleSpan<Scalar, true> particles() const {
    return ParticleSpan<Scalar, true>(particles_);
  }
  /// Advanced: direct particle access for custom initialization or
  /// injection schemes (e.g. kidnapped-robot recovery). The filter makes
  /// no assumption about weights beyond being non-negative and finite.
  ParticleSpan<Scalar, false> mutable_particles() {
    return ParticleSpan<Scalar, false>(particles_);
  }
  /// Raw field arrays, for kernels and benches that want the SoA layout.
  const ParticleSoA<Scalar>& soa() const { return particles_; }
  std::size_t size() const { return particles_.size(); }

  /// Global localization init: particles drawn uniformly over the support
  /// points (free cell centers), jittered by ±jitter on each axis, yaw
  /// uniform in (-π, π]. The support is retained for Augmented-MCL
  /// recovery injection.
  void init_uniform(std::span<const Vec2> support, double jitter) {
    TOFMCL_EXPECTS(!support.empty(), "uniform init needs support points");
    set_injection_support(support, jitter);
    executor_->for_chunks(
        particles_.size(), config_.chunks,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Rng& rng = rngs_[chunk];
          for (std::size_t i = begin; i < end; ++i) {
            const Vec2 center = support[rng.uniform_index(support.size())];
            store(particles_, i, center.x + rng.uniform(-jitter, jitter),
                  center.y + rng.uniform(-jitter, jitter),
                  rng.uniform(-kPi, kPi), 1.0);
          }
        });
    estimate_.valid = false;
  }

  /// Provides (or replaces) the free-space support used by recovery
  /// injection. Tracking-initialized filters have no support until this
  /// is called, which disables injection.
  void set_injection_support(std::span<const Vec2> support, double jitter) {
    support_.assign(support.begin(), support.end());
    support_jitter_ = jitter;
  }

  /// Tracking init: Gaussian cloud around a known pose.
  void init_gaussian(const Pose2& mean, double sigma_xy, double sigma_yaw) {
    executor_->for_chunks(
        particles_.size(), config_.chunks,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Rng& rng = rngs_[chunk];
          for (std::size_t i = begin; i < end; ++i) {
            store(particles_, i, rng.gaussian(mean.x(), sigma_xy),
                  rng.gaussian(mean.y(), sigma_xy),
                  wrap_pi(rng.gaussian(mean.yaw, sigma_yaw)), 1.0);
          }
        });
    estimate_.valid = false;
  }

  /// Phase 1 — motion update. `delta` is the odometry motion since the
  /// last motion update, expressed in the drone body frame.
  ///
  /// σ_odom is interpreted per gate interval (dxy of translation / dθ of
  /// rotation — the paper's update quantum): the noise applied to one
  /// delta is scaled by √(motion/gate) so diffusion accumulates at the
  /// configured rate per distance traveled regardless of how often the
  /// motion model is sampled, and a hovering drone does not diffuse.
  void motion_update(const Pose2& delta) {
    const MotionParams mp = motion_params(delta);
    executor_->for_chunks(
        particles_.size(), config_.chunks,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Rng& rng = rngs_[chunk];
          for (std::size_t i = begin; i < end; ++i) {
            motion_step(i, mp, rng);
          }
        });
  }

  /// Phase 2 — observation update: multiply each particle's weight by the
  /// per-beam-normalized end-point likelihood of every (valid) beam.
  ///
  /// Each factor is scaled by 1/(z_hit + z_rand + short_b) — its maximum —
  /// before multiplying, which is the log-space normalization
  /// exp(Σ log f_b − Σ log f_max,b) folded into the product one beam at a
  /// time. A perfectly matched particle keeps weight ≈ 1 for ANY beam
  /// count, where the unnormalized product (max Π f_max,b) underflows fp32
  /// storage once B is large and f_max < 1 — e.g. 128 beams from two 8×8
  /// sensors — silently zeroing every weight and with it the Augmented-MCL
  /// recovery monitor. When z_hit + z_rand == 1 (the defaults) the scale
  /// is exactly 1.0f and the arithmetic is unchanged bit for bit.
  ///
  /// With the short-return component or novelty gating enabled, per-beam
  /// state (short floor, normalizer, gate verdict) is computed ONCE here —
  /// a pure function of the beams, the previous pose estimate and the map
  /// — then applied uniformly across particles; gated beams are skipped
  /// entirely. With z_short == 0 and gating off this path is the exact
  /// pre-mixture kernel, bit for bit.
  void observation_update(std::span<const sensor::Beam> beams) {
    workload_.particles = particles_.size();
    workload_.beams = beams.size();
    workload_.gated_beams = 0;
    workload_.novelty_armed = false;
    if (beams.empty()) return;
    const bool mixture = prepare_beams(beams);
    executor_->for_chunks(
        particles_.size(), config_.chunks,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            if (mixture) {
              observation_step_mixture(i, beams);
            } else {
              observation_step(i, beams);
            }
          }
        });
  }

  /// Phases 1+2 fused: one pass over the particle state per correction.
  /// Bit-identical to motion_update(delta) followed by
  /// observation_update(beams) — the observation consumes no randomness
  /// and the per-beam mixture/gating state is computed before the sweep
  /// from the SAME inputs (previous estimate, map, beams), so fusing
  /// preserves each chunk's RNG stream, and every particle's arithmetic is
  /// untouched; only the traversal order over (particle, phase) changes.
  void motion_observation_update(const Pose2& delta,
                                 std::span<const sensor::Beam> beams) {
    const MotionParams mp = motion_params(delta);
    workload_.particles = particles_.size();
    workload_.beams = beams.size();
    workload_.gated_beams = 0;
    workload_.novelty_armed = false;
    const bool mixture = beams.empty() ? false : prepare_beams(beams);
    executor_->for_chunks(
        particles_.size(), config_.chunks,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Rng& rng = rngs_[chunk];
          for (std::size_t i = begin; i < end; ++i) {
            motion_step(i, mp, rng);
            if (beams.empty()) continue;
            if (mixture) {
              observation_step_mixture(i, beams);
            } else {
              observation_step(i, beams);
            }
          }
        });
  }

  /// Phase 3 — systematic resampling on the wheel (Fig 4). Per-chunk
  /// partial weight sums assign each chunk its own contiguous range of
  /// arrows; the outcome is identical to a serial systematic resampler
  /// fed the same partial-sum prefix.
  void resample() {
    const std::size_t n = particles_.size();
    const std::size_t chunks =
        std::clamp<std::size_t>(config_.chunks, 1, n);
    monitor_.last_inject_p = 0.0;

    // Step 1 (parallel): per-chunk weight sums — these are the partial
    // sums the paper stores during weight normalization. The squared sums
    // ride along for the effective-sample-size test.
    executor_->for_chunks(
        n, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          double sum = 0.0;
          double sum_sq = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            const double w = static_cast<double>(static_cast<float>(
                particles_.weight[i]));
            sum += w;
            sum_sq += w * w;
          }
          chunk_sums_[chunk] = sum;
          chunk_sq_sums_[chunk] = sum_sq;
        });

    // Step 2 (serial, O(chunks)): prefix offsets and total mass.
    double total = 0.0;
    double total_sq = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) {
      chunk_prefix_[c] = total;
      total += chunk_sums_[c];
      total_sq += chunk_sq_sums_[c];
    }
    if (!(total > 0.0) || !std::isfinite(total)) {
      // Degenerate weights (all zero/NaN): keep the particle set, reset
      // weights — the next observation re-weights from scratch.
      std::fill(particles_.weight.begin(), particles_.weight.end(),
                Scalar(1.0f));
      return;
    }

    // Adaptive resampling (extension): skip the draw while the effective
    // sample size is healthy. Weights persist across updates; they are
    // rescaled to mean 1 so repeated multiplication cannot underflow
    // (which matters doubly for fp16 storage).
    if (config_.resample_ess_fraction < 1.0 && total_sq > 0.0) {
      const double ess = total * total / total_sq;
      if (ess >= config_.resample_ess_fraction * static_cast<double>(n)) {
        const float scale =
            static_cast<float>(static_cast<double>(n) / total);
        executor_->for_chunks(
            n, chunks,
            [&](std::size_t, std::size_t begin, std::size_t end) {
              for (std::size_t i = begin; i < end; ++i) {
                particles_.weight[i] = Scalar(
                    static_cast<float>(particles_.weight[i]) * scale);
              }
            });
        return;
      }
    }

    // Augmented-MCL likelihood monitoring: compare the short- and
    // long-term averages of the per-particle likelihood (weights are 1
    // after each resample, so total/n is the mean observation
    // likelihood). The observation kernel already normalized every factor
    // by its per-beam maximum, so total/n is directly comparable across
    // beam counts — no pow(per_beam_max, beams) divisor, whose underflow
    // for large beam counts used to turn w_avg into inf/NaN and silently
    // disable (or saturate) recovery injection.
    // Gated beams contribute nothing to the weights, so an update whose
    // every beam was gated carries no observation information — the
    // monitor must not mistake it for evidence (in either direction).
    double inject_p = 0.0;
    if (config_.enable_injection && !support_.empty() &&
        workload_.beams > workload_.gated_beams) {
      const double w_avg = total / static_cast<double>(n);
      if (monitor_.w_slow <= 0.0) {
        monitor_.w_slow = w_avg;
        monitor_.w_fast = w_avg;
      } else {
        monitor_.w_slow +=
            config_.injection_alpha_slow * (w_avg - monitor_.w_slow);
        monitor_.w_fast +=
            config_.injection_alpha_fast * (w_avg - monitor_.w_fast);
      }
      if (monitor_.w_slow > 0.0) {
        inject_p = std::clamp(1.0 - monitor_.w_fast / monitor_.w_slow, 0.0,
                              config_.injection_max_fraction);
      }
      monitor_.last_inject_p = inject_p;
    }

    // One random number spins the wheel; arrows sit at u0 + i·step.
    const double step = total / static_cast<double>(n);
    const double u0 = resample_rng_.uniform() * step;

    // Arrow index ranges per chunk, derived from the prefix sums with one
    // consistent rule so they partition [0, n) exactly.
    const auto arrow_begin = [&](std::size_t c) -> std::size_t {
      if (c == 0) return 0;
      if (c >= chunks) return n;
      const double q = (chunk_prefix_[c] - u0) / step;
      const auto idx = static_cast<long long>(std::ceil(q));
      return static_cast<std::size_t>(
          std::clamp<long long>(idx, 0, static_cast<long long>(n)));
    };

    // Step 3 (parallel): each chunk draws the new particles whose arrows
    // fall inside its weight span, writing into the double buffer. A
    // recovery fraction of slots receives uniform redraws instead.
    executor_->for_chunks(
        n, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Rng& rng = rngs_[chunk];
          std::size_t arrow = arrow_begin(chunk);
          const std::size_t arrow_end = arrow_begin(chunk + 1);
          std::size_t src = begin;
          double cum = chunk_prefix_[chunk] +
                       static_cast<double>(static_cast<float>(
                           particles_.weight[src]));
          for (; arrow < arrow_end; ++arrow) {
            const double u = u0 + static_cast<double>(arrow) * step;
            while (u >= cum && src + 1 < end) {
              ++src;
              cum += static_cast<double>(static_cast<float>(
                  particles_.weight[src]));
            }
            if (inject_p > 0.0 && rng.bernoulli(inject_p)) {
              const Vec2 center =
                  support_[rng.uniform_index(support_.size())];
              store(back_buffer_, arrow,
                    center.x + rng.uniform(-support_jitter_, support_jitter_),
                    center.y + rng.uniform(-support_jitter_, support_jitter_),
                    rng.uniform(-kPi, kPi), 1.0);
            } else {
              back_buffer_.copy_from(particles_, arrow, src);
              back_buffer_.weight[arrow] = Scalar(1.0f);
            }
          }
        });
    particles_.swap(back_buffer_);
  }

  /// Phase 4 — pose computation: weighted average over all particles
  /// (circular mean for yaw), plus dispersion for convergence monitoring.
  PoseEstimate compute_pose() {
    const std::size_t n = particles_.size();
    const std::size_t chunks =
        std::clamp<std::size_t>(config_.chunks, 1, n);
    struct Accum {
      double w = 0.0, wx = 0.0, wy = 0.0, wc = 0.0, ws = 0.0, wxx = 0.0;
    };
    std::vector<Accum> acc(chunks);
    executor_->for_chunks(
        n, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          Accum a;
          for (std::size_t i = begin; i < end; ++i) {
            const double w = static_cast<double>(static_cast<float>(
                particles_.weight[i]));
            const double x = static_cast<double>(static_cast<float>(
                particles_.x[i]));
            const double y = static_cast<double>(static_cast<float>(
                particles_.y[i]));
            const double yaw =
                static_cast<double>(static_cast<float>(particles_.yaw[i]));
            a.w += w;
            a.wx += w * x;
            a.wy += w * y;
            a.wc += w * std::cos(yaw);
            a.ws += w * std::sin(yaw);
            a.wxx += w * (x * x + y * y);
          }
          acc[chunk] = a;
        });
    Accum total;
    for (const Accum& a : acc) {
      total.w += a.w;
      total.wx += a.wx;
      total.wy += a.wy;
      total.wc += a.wc;
      total.ws += a.ws;
      total.wxx += a.wxx;
    }
    PoseEstimate est;
    if (!(total.w > 0.0) || !std::isfinite(total.w)) {
      est.valid = false;
      estimate_ = est;
      return est;
    }
    const double mx = total.wx / total.w;
    const double my = total.wy / total.w;
    est.pose = Pose2{mx, my, std::atan2(total.ws, total.wc)};
    const double second = total.wxx / total.w - (mx * mx + my * my);
    est.position_stddev = std::sqrt(std::max(0.0, second));
    est.yaw_concentration =
        std::sqrt(total.wc * total.wc + total.ws * total.ws) / total.w;
    est.valid = true;
    estimate_ = est;
    return est;
  }

  /// One full update cycle in the paper's order (phases 1+2 fused).
  PoseEstimate update(const Pose2& delta, std::span<const sensor::Beam> beams) {
    motion_observation_update(delta, beams);
    resample();
    return compute_pose();
  }

  /// Most recent pose estimate (invalid before the first compute_pose()).
  const PoseEstimate& estimate() const { return estimate_; }
  /// Workload of the most recent observation update.
  const UpdateWorkload& workload() const { return workload_; }
  /// Augmented-MCL monitor state (diagnostics / regression tests).
  const InjectionMonitor& injection_monitor() const { return monitor_; }

 private:
  static constexpr std::size_t kMaxChunks = 64;

  /// Per-update motion constants, hoisted out of the particle loop. All
  /// kept in double: the Gaussian mean/σ feed Rng::gaussian in double
  /// precision exactly as the phase-by-phase path always did.
  struct MotionParams {
    double dx0, dy0, dyaw0;
    double sxy, syaw;
  };

  MotionParams motion_params(const Pose2& delta) const {
    double noise_scale = 1.0;
    if (config_.scale_noise_with_motion) {
      const double gate_fraction =
          delta.position.norm() / config_.gate_dxy +
          std::abs(delta.yaw) / config_.gate_dtheta;
      noise_scale = std::sqrt(std::min(gate_fraction, 4.0));
    }
    return MotionParams{delta.x(), delta.y(), delta.yaw,
                        config_.sigma_odom_xy * noise_scale,
                        config_.sigma_odom_yaw * noise_scale};
  }

  /// Motion kernel body for one particle (3 Gaussian draws from the
  /// chunk's RNG, body-frame delta rotated into the world frame).
  inline void motion_step(std::size_t i, const MotionParams& mp, Rng& rng) {
    const float dx = static_cast<float>(rng.gaussian(mp.dx0, mp.sxy));
    const float dy = static_cast<float>(rng.gaussian(mp.dy0, mp.sxy));
    const float dyaw = static_cast<float>(rng.gaussian(mp.dyaw0, mp.syaw));
    const float yaw = static_cast<float>(particles_.yaw[i]);
    const float c = std::cos(yaw);
    const float s = std::sin(yaw);
    particles_.x[i] =
        Scalar(static_cast<float>(particles_.x[i]) + c * dx - s * dy);
    particles_.y[i] =
        Scalar(static_cast<float>(particles_.y[i]) + s * dx + c * dy);
    particles_.yaw[i] = Scalar(wrap_pi_f(yaw + dyaw));
  }

  /// Per-beam state of the mixture/gating path, computed once per update.
  struct BeamAux {
    float floor = 0.0f;  ///< Short-return floor added to every factor.
    float scale = 1.0f;  ///< 1 / (z_hit + z_rand + floor).
    bool gated = false;  ///< Excluded from the weight product.
  };

  /// Computes the per-beam mixture state and novelty-gate verdicts.
  /// Returns true when the extended kernel must run; false selects the
  /// exact legacy kernel (z_short == 0 and gating disabled — the per-beam
  /// state is then the constant per_beam_scale_, so skipping it keeps the
  /// default configuration bit-identical to the pre-mixture model).
  ///
  /// Pure function of (beams, config, previous estimate, map): both the
  /// phased and the fused sweep call it before touching any particle, so
  /// they classify identically and stay bit-identical to each other.
  bool prepare_beams(std::span<const sensor::Beam> beams) {
    // Concentration, not position_stddev: the recovery tail of injected
    // uniform particles inflates the position variance by construction
    // (see MclConfig::novelty_min_concentration).
    const bool want_gate =
        config_.enable_novelty_gating && estimate_.valid &&
        estimate_.yaw_concentration >= config_.novelty_min_concentration;
    workload_.novelty_armed = want_gate;
    if (!want_gate) blind_streak_ = 0;
    if (config_.z_short <= 0.0 && !want_gate) return false;

    // Blind-streak fail-safe (MclConfig::novelty_max_blind_updates): too
    // many consecutive fully-gated corrections means the gate is starving
    // the filter of evidence — stand down for this update so a kidnapping
    // toward nearer surfaces cannot hide behind its own gating.
    const bool stand_down =
        want_gate && blind_streak_ >= config_.novelty_max_blind_updates;

    beam_aux_.resize(beams.size());
    const double est_yaw = estimate_.pose.yaw;
    const double gc = std::cos(est_yaw);
    const double gs = std::sin(est_yaw);
    for (std::size_t b = 0; b < beams.size(); ++b) {
      const sensor::Beam& beam = beams[b];
      BeamAux aux;
      aux.floor = short_return_floor(beam.range_m, mixture_params_);
      aux.scale = static_cast<float>(
          1.0 / (config_.z_hit + config_.z_rand +
                 static_cast<double>(aux.floor)));
      if (want_gate && !stand_down) {
        // Ray from the sensor position under the ESTIMATED pose along the
        // beam direction. The body-frame origin is recovered from the
        // precomputed end point (it already includes the mount offset).
        const double ca = std::cos(beam.azimuth_body);
        const double sa = std::sin(beam.azimuth_body);
        const double range = static_cast<double>(beam.range_m);
        const double ox_b = static_cast<double>(beam.endpoint_body.x) -
                            range * ca;
        const double oy_b = static_cast<double>(beam.endpoint_body.y) -
                            range * sa;
        const Vec2 origin{
            estimate_.pose.x() + gc * ox_b - gs * oy_b,
            estimate_.pose.y() + gs * ox_b + gc * oy_b};
        const Vec2 dir{gc * ca - gs * sa, gs * ca + gc * sa};
        if (!map_surface_within(origin, dir,
                                range + config_.novelty_margin_m)) {
          // The map expects free space well past the measured range: the
          // return bounced off something the map does not know.
          aux.gated = true;
          ++workload_.gated_beams;
        }
      }
      beam_aux_[b] = aux;
    }
    if (want_gate && !beams.empty() &&
        workload_.gated_beams == beams.size()) {
      ++blind_streak_;
    } else {
      blind_streak_ = 0;
    }
    return true;
  }

  /// Sphere-traces the truncated EDT from `origin` along unit `dir`:
  /// true iff a mapped surface (distance ≤ one cell) lies within `limit`
  /// meters. The truncation at rmax only caps the step length, never the
  /// verdict. O(limit / resolution) worst case, run once per beam per
  /// correction — not in the per-particle hot path.
  bool map_surface_within(Vec2 origin, Vec2 dir, double limit) const {
    const double eps = map_->resolution();
    double t = 0.0;
    while (t <= limit) {
      const float d = map_->distance_at(
          {origin.x + t * dir.x, origin.y + t * dir.y});
      if (static_cast<double>(d) <= eps) return true;
      t += std::max(static_cast<double>(d), eps);
    }
    return false;
  }

  /// Observation kernel body for one particle: transform each beam end
  /// point by the particle pose and fold the normalized factor into the
  /// weight. Consumes no randomness.
  inline void observation_step(std::size_t i,
                               std::span<const sensor::Beam> beams) {
    const float x = static_cast<float>(particles_.x[i]);
    const float y = static_cast<float>(particles_.y[i]);
    const float yaw = static_cast<float>(particles_.yaw[i]);
    const float c = std::cos(yaw);
    const float s = std::sin(yaw);
    float w = static_cast<float>(particles_.weight[i]);
    for (const sensor::Beam& beam : beams) {
      const float bx = beam.endpoint_body.x;
      const float by = beam.endpoint_body.y;
      const float ex = x + c * bx - s * by;
      const float ey = y + s * bx + c * by;
      w *= observation_model_.factor(ex, ey) * per_beam_scale_;
    }
    particles_.weight[i] = Scalar(w);
  }

  /// Mixture/gating variant: the map-distance factor gains the beam's
  /// short-return floor, the normalizer is per beam, and gated beams are
  /// skipped. Identical memory traffic otherwise — still one pass, still
  /// no randomness.
  inline void observation_step_mixture(std::size_t i,
                                       std::span<const sensor::Beam> beams) {
    const float x = static_cast<float>(particles_.x[i]);
    const float y = static_cast<float>(particles_.y[i]);
    const float yaw = static_cast<float>(particles_.yaw[i]);
    const float c = std::cos(yaw);
    const float s = std::sin(yaw);
    float w = static_cast<float>(particles_.weight[i]);
    for (std::size_t b = 0; b < beams.size(); ++b) {
      const BeamAux& aux = beam_aux_[b];
      if (aux.gated) continue;
      const float bx = beams[b].endpoint_body.x;
      const float by = beams[b].endpoint_body.y;
      const float ex = x + c * bx - s * by;
      const float ey = y + s * bx + c * by;
      w *= (observation_model_.factor(ex, ey) + aux.floor) * aux.scale;
    }
    particles_.weight[i] = Scalar(w);
  }

  static float wrap_pi_f(float angle) {
    return static_cast<float>(wrap_pi(static_cast<double>(angle)));
  }

  static void store(ParticleSoA<Scalar>& soa, std::size_t i, double x,
                    double y, double yaw, double w) {
    soa.x[i] = Scalar(static_cast<float>(x));
    soa.y[i] = Scalar(static_cast<float>(y));
    soa.yaw[i] = Scalar(static_cast<float>(yaw));
    soa.weight[i] = Scalar(static_cast<float>(w));
  }

  const Map* map_;
  MclConfig config_;
  Executor* executor_;
  ObservationModel observation_model_;
  float per_beam_scale_ = 1.0f;
  BeamModelParams mixture_params_{};
  /// Scratch: per-beam mixture/gating state of the current update.
  std::vector<BeamAux> beam_aux_;
  /// Consecutive corrections in which the gate excluded EVERY beam.
  std::size_t blind_streak_ = 0;
  ParticleSoA<Scalar> particles_;
  ParticleSoA<Scalar> back_buffer_;
  std::vector<double> chunk_sums_;
  std::vector<double> chunk_sq_sums_;
  std::array<double, kMaxChunks> chunk_prefix_{};
  std::vector<Rng> rngs_;
  Rng resample_rng_{0};
  PoseEstimate estimate_;
  UpdateWorkload workload_;
  std::vector<Vec2> support_;
  double support_jitter_ = 0.0;
  InjectionMonitor monitor_;
};

}  // namespace tofmcl::core
