#pragma once
/// \file beam_model.hpp
/// \brief Conversion of multizone ToF frames into 2D beams for MCL.
///
/// The drone flies at fixed height and localizes in a 2D map, so the 8×8
/// (or 4×4) zone matrix collapses to one beam per column: we read the
/// central row(s), correct the slant range back to the horizontal plane and
/// express each return as a point in the drone body frame. Zones with
/// raised error flags are skipped (paper Section III-A2), which is exactly
/// how the observation model ignores invalid returns.
///
/// Precomputing the body-frame end point here means the per-particle work
/// in the correction step is a single 2D rigid transform per beam — the
/// optimization that makes the embedded implementation cheap.

#include <vector>

#include "common/geometry.hpp"
#include "sensor/tof_sensor.hpp"

namespace tofmcl::sensor {

/// One 2D range beam in the drone body frame.
struct Beam {
  /// Beam direction in the body frame (mount yaw + zone azimuth).
  double azimuth_body = 0.0;
  /// Horizontal range from the sensor, meters (slant-corrected).
  float range_m = 0.0f;
  /// Measurement end point in the drone body frame (includes the sensor
  /// mount offset). This is ẑ of Eq. 1 before the particle transform.
  Vec2f endpoint_body{};
};

/// Controls which zones become beams.
struct BeamExtractionConfig {
  /// Rows to read; empty selects the row just below and just above the
  /// horizon (the two central rows) — their elevation is ±fov/(2·side),
  /// under 3° for the 8×8 mode.
  std::vector<int> rows;
  /// Returns shorter than this are discarded (self-echo guard), meters.
  double min_range_m = 0.05;
  /// Returns longer than this are discarded, meters. The paper truncates
  /// the EDT at 1.5 m but feeds the full sensor range to the filter; we
  /// keep the sensor limit by default.
  double max_range_m = 4.0;
};

/// Default central rows for a mode (e.g. {3, 4} for 8×8).
std::vector<int> central_rows(ZoneMode mode);

/// Extract valid 2D beams from one frame. Invalid/flagged/out-of-band
/// zones produce no beam. When both central rows see the same column
/// validly, both beams are emitted — they are independent measurements of
/// the same wall and sharpen the correction slightly.
std::vector<Beam> extract_beams(const TofFrame& frame,
                                const TofSensorConfig& sensor,
                                const BeamExtractionConfig& config = {});

}  // namespace tofmcl::sensor
