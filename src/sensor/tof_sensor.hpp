#pragma once
/// \file tof_sensor.hpp
/// \brief Model of the ST VL53L5CX multizone time-of-flight sensor.
///
/// The VL53L5CX returns a matrix of either 8×8 zones at up to 15 Hz or 4×4
/// zones at up to 60 Hz over a 45° square field of view. Every zone carries
/// a distance plus an error flag that is raised on out-of-range targets or
/// interference (paper Section III-A2). This module simulates frames
/// against the continuous line-segment world so the localization stack
/// sees data with the same geometry, rate, noise and failure modes as the
/// physical sensor.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "map/world.hpp"

namespace tofmcl::sensor {

/// Zone matrix resolution. The physical sensor trades rate for zones.
enum class ZoneMode : std::uint8_t {
  k8x8,  ///< 64 zones, ≤ 15 Hz
  k4x4,  ///< 16 zones, ≤ 60 Hz
};

constexpr int zones_per_side(ZoneMode mode) {
  return mode == ZoneMode::k8x8 ? 8 : 4;
}
/// Maximum frame rate for a mode (Hz), per the datasheet values the paper
/// quotes.
constexpr double max_rate_hz(ZoneMode mode) {
  return mode == ZoneMode::k8x8 ? 15.0 : 60.0;
}

/// Per-zone measurement status, mirroring the device's error flag.
enum class ZoneStatus : std::uint8_t {
  kValid = 0,
  kOutOfRange = 1,     ///< No target within the ranging distance.
  kInterference = 2,   ///< Flagged measurement (crosstalk, ambient light).
};

/// One zone's output.
struct ZoneMeasurement {
  float distance_m = 0.0f;
  ZoneStatus status = ZoneStatus::kOutOfRange;

  bool valid() const { return status == ZoneStatus::kValid; }
};

/// A complete sensor frame: `side`×`side` zones, row-major, row 0 at the
/// bottom of the field of view, column 0 at the left when looking along
/// the sensor's boresight.
struct TofFrame {
  double timestamp_s = 0.0;
  int sensor_id = 0;
  ZoneMode mode = ZoneMode::k8x8;
  std::vector<ZoneMeasurement> zones;

  int side() const { return zones_per_side(mode); }
  const ZoneMeasurement& zone(int row, int col) const {
    TOFMCL_EXPECTS(row >= 0 && row < side() && col >= 0 && col < side(),
                   "zone index out of range");
    return zones[static_cast<std::size_t>(row * side() + col)];
  }
};

/// Static configuration of one mounted sensor.
struct TofSensorConfig {
  int sensor_id = 0;
  ZoneMode mode = ZoneMode::k8x8;
  /// Mounting pose in the drone body frame. The paper's deck carries a
  /// forward-facing (yaw 0) and a backward-facing (yaw π) sensor.
  Pose2 mount{0.02, 0.0, 0.0};
  double fov_rad = deg_to_rad(45.0);  ///< Square FoV edge (azimuth span).
  double max_range_m = 4.0;           ///< Ranging limit of the device.
  double min_range_m = 0.02;

  // --- noise model ---
  /// Range noise floor (σ, meters) and proportional term. The device's
  /// typical ranging error is a few percent of distance.
  double sigma_base_m = 0.01;
  double sigma_proportional = 0.02;
  /// Probability that a valid zone is flagged as interference.
  double p_interference = 0.01;
  /// Extra dropout at grazing incidence: a zone whose beam meets the wall
  /// at an angle shallower than `grazing_limit_rad` from the surface is
  /// flagged with probability `p_grazing_dropout`.
  double grazing_limit_rad = deg_to_rad(15.0);
  double p_grazing_dropout = 0.5;
  /// Height of the drone above ground (m) and wall height (m): zones whose
  /// elevated beam would pass over the walls return out-of-range.
  double flight_height_m = 0.5;
  double wall_height_m = 1.0;
};

/// A vertical cylinder composited into the rendered scene: the cross
/// section of a dynamic obstacle (a person, a rolling cart) at one
/// instant. Cylinders exist only on the SENSING side of the simulation —
/// the localizer's map never contains them, which is exactly the
/// unmodeled-obstacle stressor dynamic-environment MCL work evaluates.
struct CylinderObstacle {
  Vec2 center{};
  double radius_m = 0.25;
  double height_m = 1.8;
};

/// Nearest intersection of the 2D ray (origin, angle) with any cylinder
/// cross section within max_range; nullopt when none is hit. An origin
/// inside a cylinder reports distance 0. `sin_incidence` is |sin| of the
/// angle between the ray and the surface tangent at the hit (1 = head-on,
/// 0 = grazing), matching the wall grazing convention of the beam model.
struct CylinderHit {
  double distance = 0.0;
  double sin_incidence = 1.0;
  std::size_t index = 0;  ///< Which cylinder was hit.
};
std::optional<CylinderHit> raycast_cylinders(
    std::span<const CylinderObstacle> obstacles, Vec2 origin, double angle,
    double max_range);

/// Azimuth of a zone column in the sensor frame (radians). Columns sweep
/// from +fov/2 (col 0, left) to -fov/2 (last col, right), each beam at the
/// center of its zone.
double zone_azimuth(const TofSensorConfig& config, int col);

/// Elevation of a zone row in the sensor frame (radians), row 0 lowest.
double zone_elevation(const TofSensorConfig& config, int row);

/// Simulates VL53L5CX frames against a line-segment world.
///
/// Geometry: a zone's beam is cast in 2D at the zone's azimuth from the
/// sensor's world pose. The world's walls are vertical planes of height
/// `wall_height_m`; a zone at elevation ε sees the wall at slant range
/// d / cos(ε) if the beam's height at the wall (flight height +
/// d·tan(ε)) is within [0, wall_height], otherwise it ranges out.
class MultizoneToF {
 public:
  explicit MultizoneToF(TofSensorConfig config);

  const TofSensorConfig& config() const { return config_; }

  /// Produce one frame from the drone's true pose. `rng` drives the noise
  /// and dropout draws.
  TofFrame measure(const map::World& world, const Pose2& drone_pose,
                   double timestamp_s, Rng& rng) const;

  /// Frame against the static world PLUS a set of cylinder obstacles (the
  /// dynamic scene at this instant): each beam sees whichever surface is
  /// nearer. With an empty obstacle span this consumes exactly the same
  /// rng draws as the static overload, so static datasets stay
  /// bit-identical.
  TofFrame measure(const map::World& world,
                   std::span<const CylinderObstacle> obstacles,
                   const Pose2& drone_pose, double timestamp_s,
                   Rng& rng) const;

  /// Noise-free variant used by tests and the observation-model ablation.
  TofFrame measure_ideal(const map::World& world, const Pose2& drone_pose,
                         double timestamp_s) const;

 private:
  TofFrame measure_impl(const map::World& world,
                        std::span<const CylinderObstacle> obstacles,
                        const Pose2& drone_pose, double timestamp_s,
                        Rng* rng) const;

  TofSensorConfig config_;
};

}  // namespace tofmcl::sensor
