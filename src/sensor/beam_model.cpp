#include "sensor/beam_model.hpp"

#include <cmath>

namespace tofmcl::sensor {

std::vector<int> central_rows(ZoneMode mode) {
  const int side = zones_per_side(mode);
  return {side / 2 - 1, side / 2};
}

std::vector<Beam> extract_beams(const TofFrame& frame,
                                const TofSensorConfig& sensor,
                                const BeamExtractionConfig& config) {
  TOFMCL_EXPECTS(frame.mode == sensor.mode,
                 "frame and sensor config zone modes differ");
  const int side = frame.side();
  const std::vector<int> rows =
      config.rows.empty() ? central_rows(frame.mode) : config.rows;

  std::vector<Beam> beams;
  beams.reserve(rows.size() * static_cast<std::size_t>(side));

  for (const int row : rows) {
    TOFMCL_EXPECTS(row >= 0 && row < side, "extraction row out of range");
    const double elevation = zone_elevation(sensor, row);
    const double cos_elev = std::cos(elevation);
    for (int col = 0; col < side; ++col) {
      const ZoneMeasurement& zone = frame.zone(row, col);
      if (!zone.valid()) continue;
      const double horizontal =
          static_cast<double>(zone.distance_m) * cos_elev;
      if (horizontal < config.min_range_m || horizontal > config.max_range_m) {
        continue;
      }
      Beam beam;
      beam.azimuth_body = sensor.mount.yaw + zone_azimuth(sensor, col);
      beam.range_m = static_cast<float>(horizontal);
      const Vec2 endpoint =
          sensor.mount.position +
          Vec2{horizontal * std::cos(beam.azimuth_body),
               horizontal * std::sin(beam.azimuth_body)};
      beam.endpoint_body = Vec2f{static_cast<float>(endpoint.x),
                                 static_cast<float>(endpoint.y)};
      beams.push_back(beam);
    }
  }
  return beams;
}

}  // namespace tofmcl::sensor
