#pragma once
/// \file grid_raycaster.hpp
/// \brief DDA raycasting through an occupancy grid.
///
/// Amanatides–Woo voxel traversal: visits every cell the ray passes
/// through in order, returning the entry distance into the first Occupied
/// cell. Used to cross-validate the analytic world raycaster, by the
/// sensor-view example, and by the ray-cast observation-model ablation
/// (the paper itself uses the cheaper beam-endpoint model; comparing both
/// is one of our extension benches).

#include <optional>

#include "common/geometry.hpp"
#include "map/occupancy_grid.hpp"

namespace tofmcl::sensor {

struct GridRayHit {
  double distance = 0.0;  ///< Meters from origin to entering the hit cell.
  map::CellIndex cell{};  ///< The occupied cell that stopped the ray.
};

/// Casts a ray from `origin` at `angle` (world frame) and returns the
/// first Occupied cell within `max_range`. Unknown and Free cells are
/// transparent. A ray starting inside an occupied cell hits at distance 0.
/// Rays that exit the grid, or originate outside it, miss (walls only
/// exist inside the map).
std::optional<GridRayHit> raycast_grid(const map::OccupancyGrid& grid,
                                       Vec2 origin, double angle,
                                       double max_range);

}  // namespace tofmcl::sensor
