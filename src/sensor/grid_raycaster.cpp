#include "sensor/grid_raycaster.hpp"

#include <cmath>
#include <limits>

namespace tofmcl::sensor {

std::optional<GridRayHit> raycast_grid(const map::OccupancyGrid& grid,
                                       Vec2 origin, double angle,
                                       double max_range) {
  TOFMCL_EXPECTS(max_range >= 0.0, "max_range must be non-negative");
  map::CellIndex cell = grid.world_to_cell(origin);
  if (!grid.in_bounds(cell)) return std::nullopt;
  if (grid.is_occupied(cell)) return GridRayHit{0.0, cell};

  const double res = grid.resolution();
  const Vec2 dir{std::cos(angle), std::sin(angle)};

  // Parametric distance t (meters along the ray) at which the ray crosses
  // the next vertical/horizontal cell boundary, and the per-cell step.
  const int step_x = dir.x > 0.0 ? 1 : (dir.x < 0.0 ? -1 : 0);
  const int step_y = dir.y > 0.0 ? 1 : (dir.y < 0.0 ? -1 : 0);

  const double inf = std::numeric_limits<double>::infinity();
  double t_max_x = inf;
  double t_max_y = inf;
  double t_delta_x = inf;
  double t_delta_y = inf;

  if (step_x != 0) {
    const double next_x =
        grid.origin().x +
        (cell.x + (step_x > 0 ? 1 : 0)) * res;  // next vertical boundary
    t_max_x = (next_x - origin.x) / dir.x;
    t_delta_x = res / std::abs(dir.x);
  }
  if (step_y != 0) {
    const double next_y =
        grid.origin().y + (cell.y + (step_y > 0 ? 1 : 0)) * res;
    t_max_y = (next_y - origin.y) / dir.y;
    t_delta_y = res / std::abs(dir.y);
  }

  double t = 0.0;
  while (t <= max_range) {
    if (t_max_x < t_max_y) {
      t = t_max_x;
      t_max_x += t_delta_x;
      cell.x += step_x;
    } else if (t_max_y < t_max_x) {
      t = t_max_y;
      t_max_y += t_delta_y;
      cell.y += step_y;
    } else {
      // Exact tie: the ray passes through a cell corner. Stepping a single
      // axis here would let a diagonal ray slip between the two occupied
      // cells flanking the corner (corner tunneling), so both flanking
      // cells are checked at the corner distance — either being solid
      // blocks the ray — and then both axes advance into the diagonal
      // cell.
      t = t_max_y;
      if (t > max_range) return std::nullopt;
      const map::CellIndex y_side{cell.x, cell.y + step_y};
      if (grid.in_bounds(y_side) && grid.is_occupied(y_side)) {
        return GridRayHit{t, y_side};
      }
      const map::CellIndex x_side{cell.x + step_x, cell.y};
      if (grid.in_bounds(x_side) && grid.is_occupied(x_side)) {
        return GridRayHit{t, x_side};
      }
      t_max_x += t_delta_x;
      t_max_y += t_delta_y;
      cell.x += step_x;
      cell.y += step_y;
    }
    if (t > max_range) return std::nullopt;
    if (!grid.in_bounds(cell)) return std::nullopt;
    if (grid.is_occupied(cell)) return GridRayHit{t, cell};
  }
  return std::nullopt;
}

}  // namespace tofmcl::sensor
