#include "sensor/tof_sensor.hpp"

#include <algorithm>
#include <cmath>

namespace tofmcl::sensor {

double zone_azimuth(const TofSensorConfig& config, int col) {
  const int side = zones_per_side(config.mode);
  TOFMCL_EXPECTS(col >= 0 && col < side, "column out of range");
  const double zone_width = config.fov_rad / side;
  // Column 0 is leftmost (positive azimuth); beams sit at zone centers.
  return config.fov_rad / 2.0 - (col + 0.5) * zone_width;
}

double zone_elevation(const TofSensorConfig& config, int row) {
  const int side = zones_per_side(config.mode);
  TOFMCL_EXPECTS(row >= 0 && row < side, "row out of range");
  const double zone_height = config.fov_rad / side;
  // Row 0 is lowest (negative elevation).
  return -config.fov_rad / 2.0 + (row + 0.5) * zone_height;
}

std::optional<CylinderHit> raycast_cylinders(
    std::span<const CylinderObstacle> obstacles, Vec2 origin, double angle,
    double max_range) {
  TOFMCL_EXPECTS(max_range >= 0.0, "max_range must be non-negative");
  const Vec2 dir{std::cos(angle), std::sin(angle)};
  std::optional<CylinderHit> best;
  for (std::size_t i = 0; i < obstacles.size(); ++i) {
    const CylinderObstacle& o = obstacles[i];
    // |origin + t·dir − center|² = r²  ⇒  t² − 2bt + c = 0 with unit dir.
    const Vec2 to_center = o.center - origin;
    const double b = dir.dot(to_center);
    const double c = to_center.squared_norm() - o.radius_m * o.radius_m;
    const double disc = b * b - c;
    if (disc < 0.0) continue;
    const double sqrt_disc = std::sqrt(disc);
    double t = b - sqrt_disc;  // near intersection
    if (t < 0.0) {
      if (b + sqrt_disc < 0.0) continue;  // cylinder fully behind the ray
      t = 0.0;                            // origin inside the cylinder
    }
    if (t > max_range) continue;
    if (best && best->distance <= t) continue;
    // Surface normal at the hit; |dot(dir, n)| is the sine of the angle
    // between the ray and the local surface tangent.
    const Vec2 normal = (origin + dir * t - o.center).normalized();
    const double sin_inc =
        t > 0.0 ? std::min(1.0, std::abs(dir.dot(normal))) : 1.0;
    best = CylinderHit{t, sin_inc, i};
  }
  return best;
}

MultizoneToF::MultizoneToF(TofSensorConfig config) : config_(config) {
  TOFMCL_EXPECTS(config_.fov_rad > 0.0 && config_.fov_rad < kPi,
                 "FoV must be in (0, pi)");
  TOFMCL_EXPECTS(config_.max_range_m > config_.min_range_m,
                 "max range must exceed min range");
  TOFMCL_EXPECTS(config_.wall_height_m > 0.0, "walls must have height");
  TOFMCL_EXPECTS(
      config_.flight_height_m >= 0.0 &&
          config_.flight_height_m <= config_.wall_height_m,
      "flight height must be within the wall height for the 2D world model");
}

TofFrame MultizoneToF::measure(const map::World& world,
                               const Pose2& drone_pose, double timestamp_s,
                               Rng& rng) const {
  return measure_impl(world, {}, drone_pose, timestamp_s, &rng);
}

TofFrame MultizoneToF::measure(const map::World& world,
                               std::span<const CylinderObstacle> obstacles,
                               const Pose2& drone_pose, double timestamp_s,
                               Rng& rng) const {
  return measure_impl(world, obstacles, drone_pose, timestamp_s, &rng);
}

TofFrame MultizoneToF::measure_ideal(const map::World& world,
                                     const Pose2& drone_pose,
                                     double timestamp_s) const {
  return measure_impl(world, {}, drone_pose, timestamp_s, nullptr);
}

TofFrame MultizoneToF::measure_impl(const map::World& world,
                                    std::span<const CylinderObstacle> obstacles,
                                    const Pose2& drone_pose,
                                    double timestamp_s, Rng* rng) const {
  const int side = zones_per_side(config_.mode);
  TofFrame frame;
  frame.timestamp_s = timestamp_s;
  frame.sensor_id = config_.sensor_id;
  frame.mode = config_.mode;
  frame.zones.assign(static_cast<std::size_t>(side * side), {});

  const Pose2 sensor_pose = drone_pose.compose(config_.mount);

  // One column can see up to two surfaces in depth order: a cylinder and
  // the wall behind it. A row whose elevated beam over/undershoots the
  // near surface continues to the far one (a low cart occludes low rows
  // but not the wall return of high rows).
  struct Surface {
    double distance = 0.0;
    double height = 0.0;
    double grazing = kPi / 2.0;
  };

  for (int col = 0; col < side; ++col) {
    const double azimuth = zone_azimuth(config_, col);
    const double world_angle = sensor_pose.yaw + azimuth;
    const auto wall_hit = world.raycast(sensor_pose.position, world_angle,
                                        config_.max_range_m);
    const auto cyl_hit = raycast_cylinders(
        obstacles, sensor_pose.position, world_angle, config_.max_range_m);

    Surface surfaces[2];
    int surface_count = 0;
    if (cyl_hit) {
      surfaces[surface_count++] = {cyl_hit->distance,
                                   obstacles[cyl_hit->index].height_m,
                                   std::asin(cyl_hit->sin_incidence)};
    }
    if (wall_hit) {
      const map::Segment& s = world.segments()[wall_hit->segment];
      const Vec2 wall_dir = (s.b - s.a).normalized();
      const Vec2 ray_dir{std::cos(world_angle), std::sin(world_angle)};
      surfaces[surface_count++] = {
          wall_hit->distance, config_.wall_height_m,
          std::acos(std::min(1.0, std::abs(ray_dir.dot(wall_dir))))};
    }
    if (surface_count == 2 && surfaces[1].distance < surfaces[0].distance) {
      std::swap(surfaces[0], surfaces[1]);
    }

    for (int row = 0; row < side; ++row) {
      ZoneMeasurement& zone =
          frame.zones[static_cast<std::size_t>(row * side + col)];
      const double elevation = zone_elevation(config_, row);
      // Nearest surface whose panel the elevated beam actually meets;
      // over- or under-shooting a panel continues into open space.
      const Surface* hit = nullptr;
      for (int i = 0; i < surface_count; ++i) {
        const double height_at_surface =
            config_.flight_height_m +
            surfaces[i].distance * std::tan(elevation);
        if (height_at_surface >= 0.0 &&
            height_at_surface <= surfaces[i].height) {
          hit = &surfaces[i];
          break;
        }
      }
      if (hit == nullptr) {
        zone.status = ZoneStatus::kOutOfRange;
        continue;
      }
      const double grazing = hit->grazing;
      double slant = hit->distance / std::cos(elevation);
      if (slant > config_.max_range_m) {
        zone.status = ZoneStatus::kOutOfRange;
        continue;
      }
      if (rng != nullptr) {
        if (rng->bernoulli(config_.p_interference)) {
          zone.status = ZoneStatus::kInterference;
          continue;
        }
        if (grazing < config_.grazing_limit_rad &&
            rng->bernoulli(config_.p_grazing_dropout)) {
          zone.status = ZoneStatus::kInterference;
          continue;
        }
        const double sigma =
            config_.sigma_base_m + config_.sigma_proportional * slant;
        slant = std::max(0.0, slant + rng->gaussian(0.0, sigma));
      }
      if (slant < config_.min_range_m) {
        zone.status = ZoneStatus::kInterference;
        continue;
      }
      zone.distance_m = static_cast<float>(slant);
      zone.status = ZoneStatus::kValid;
    }
  }
  return frame;
}

}  // namespace tofmcl::sensor
