#include "sensor/tof_sensor.hpp"

#include <cmath>

namespace tofmcl::sensor {

double zone_azimuth(const TofSensorConfig& config, int col) {
  const int side = zones_per_side(config.mode);
  TOFMCL_EXPECTS(col >= 0 && col < side, "column out of range");
  const double zone_width = config.fov_rad / side;
  // Column 0 is leftmost (positive azimuth); beams sit at zone centers.
  return config.fov_rad / 2.0 - (col + 0.5) * zone_width;
}

double zone_elevation(const TofSensorConfig& config, int row) {
  const int side = zones_per_side(config.mode);
  TOFMCL_EXPECTS(row >= 0 && row < side, "row out of range");
  const double zone_height = config.fov_rad / side;
  // Row 0 is lowest (negative elevation).
  return -config.fov_rad / 2.0 + (row + 0.5) * zone_height;
}

MultizoneToF::MultizoneToF(TofSensorConfig config) : config_(config) {
  TOFMCL_EXPECTS(config_.fov_rad > 0.0 && config_.fov_rad < kPi,
                 "FoV must be in (0, pi)");
  TOFMCL_EXPECTS(config_.max_range_m > config_.min_range_m,
                 "max range must exceed min range");
  TOFMCL_EXPECTS(config_.wall_height_m > 0.0, "walls must have height");
  TOFMCL_EXPECTS(
      config_.flight_height_m >= 0.0 &&
          config_.flight_height_m <= config_.wall_height_m,
      "flight height must be within the wall height for the 2D world model");
}

TofFrame MultizoneToF::measure(const map::World& world,
                               const Pose2& drone_pose, double timestamp_s,
                               Rng& rng) const {
  return measure_impl(world, drone_pose, timestamp_s, &rng);
}

TofFrame MultizoneToF::measure_ideal(const map::World& world,
                                     const Pose2& drone_pose,
                                     double timestamp_s) const {
  return measure_impl(world, drone_pose, timestamp_s, nullptr);
}

TofFrame MultizoneToF::measure_impl(const map::World& world,
                                    const Pose2& drone_pose,
                                    double timestamp_s, Rng* rng) const {
  const int side = zones_per_side(config_.mode);
  TofFrame frame;
  frame.timestamp_s = timestamp_s;
  frame.sensor_id = config_.sensor_id;
  frame.mode = config_.mode;
  frame.zones.assign(static_cast<std::size_t>(side * side), {});

  const Pose2 sensor_pose = drone_pose.compose(config_.mount);

  for (int col = 0; col < side; ++col) {
    const double azimuth = zone_azimuth(config_, col);
    const double world_angle = sensor_pose.yaw + azimuth;
    const auto hit = world.raycast(sensor_pose.position, world_angle,
                                   config_.max_range_m);

    // Grazing angle between the beam and the wall surface (π/2 =
    // perpendicular incidence). Shallow incidence scatters the return.
    double grazing = kPi / 2.0;
    if (hit) {
      const map::Segment& s = world.segments()[hit->segment];
      const Vec2 wall_dir = (s.b - s.a).normalized();
      const Vec2 ray_dir{std::cos(world_angle), std::sin(world_angle)};
      grazing = std::acos(std::min(1.0, std::abs(ray_dir.dot(wall_dir))));
    }

    for (int row = 0; row < side; ++row) {
      ZoneMeasurement& zone =
          frame.zones[static_cast<std::size_t>(row * side + col)];
      if (!hit) {
        zone.status = ZoneStatus::kOutOfRange;
        continue;
      }
      const double elevation = zone_elevation(config_, row);
      // Beam height where it meets the wall; over- or under-shooting the
      // wall panel ranges out (the beam continues into open space).
      const double height_at_wall =
          config_.flight_height_m + hit->distance * std::tan(elevation);
      if (height_at_wall < 0.0 || height_at_wall > config_.wall_height_m) {
        zone.status = ZoneStatus::kOutOfRange;
        continue;
      }
      double slant = hit->distance / std::cos(elevation);
      if (slant > config_.max_range_m) {
        zone.status = ZoneStatus::kOutOfRange;
        continue;
      }
      if (rng != nullptr) {
        if (rng->bernoulli(config_.p_interference)) {
          zone.status = ZoneStatus::kInterference;
          continue;
        }
        if (grazing < config_.grazing_limit_rad &&
            rng->bernoulli(config_.p_grazing_dropout)) {
          zone.status = ZoneStatus::kInterference;
          continue;
        }
        const double sigma =
            config_.sigma_base_m + config_.sigma_proportional * slant;
        slant = std::max(0.0, slant + rng->gaussian(0.0, sigma));
      }
      if (slant < config_.min_range_m) {
        zone.status = ZoneStatus::kInterference;
        continue;
      }
      zone.distance_m = static_cast<float>(slant);
      zone.status = ZoneStatus::kValid;
    }
  }
  return frame;
}

}  // namespace tofmcl::sensor
