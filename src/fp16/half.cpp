#include "fp16/half.hpp"

#include <bit>
#include <ostream>

namespace tofmcl {

namespace {
/// Shift `mant` right by `shift` bits, rounding to nearest-even.
constexpr std::uint32_t round_shift_rne(std::uint32_t mant, int shift) {
  const std::uint32_t result = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1u);
  const std::uint32_t halfway = 1u << (shift - 1);
  if (rem > halfway || (rem == halfway && (result & 1u))) return result + 1;
  return result;
}
}  // namespace

std::uint16_t float_to_half_bits(float value) noexcept {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const auto sign = static_cast<std::uint16_t>((f >> 16) & 0x8000u);
  const std::uint32_t exp_field = (f >> 23) & 0xFFu;
  std::uint32_t mant = f & 0x007FFFFFu;

  if (exp_field == 0xFFu) {
    // Inf / NaN. NaNs are quieted (the quiet bit keeps them NaN even when
    // the payload truncates to zero) and keep their top payload bits —
    // exactly what hardware F16C (vcvtps2ph) produces, so the software
    // and SIMD kernel paths convert bit-identically.
    if (mant == 0) return static_cast<std::uint16_t>(sign | 0x7C00u);
    const auto payload = static_cast<std::uint16_t>(mant >> 13);
    return static_cast<std::uint16_t>(sign | 0x7C00u | 0x0200u | payload);
  }

  // Rebias: binary32 bias 127 → binary16 bias 15.
  const std::int32_t exp = static_cast<std::int32_t>(exp_field) - 127 + 15;

  if (exp >= 31) {
    // Overflow: round-to-nearest-even takes everything at or above
    // (max finite + 0.5 ulp) to infinity; the exponent test alone is
    // sufficient because exp==31 inputs are already ≥ 2^16 > 65504+16.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (exp <= 0) {
    // Result is subnormal (or underflows to zero).
    if (exp < -10) {
      // Below half the smallest subnormal: rounds to signed zero. The
      // boundary case |x| == 2^-25 ties to even (zero) as well.
      return sign;
    }
    mant |= 0x00800000u;  // make the implicit leading bit explicit
    const int shift = 14 - exp;  // in [14, 24]
    const std::uint32_t rounded = round_shift_rne(mant, shift);
    return static_cast<std::uint16_t>(sign | rounded);
  }

  // Normal result: 13 mantissa bits are discarded with RNE; a mantissa
  // carry propagates into the exponent field correctly by construction
  // (1.111..11 rounding up to 10.000..00 doubles the exponent bits).
  std::uint32_t half = (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<std::uint16_t>(sign | half);
}

float half_bits_to_float(std::uint16_t bits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  std::uint32_t exp = (bits >> 10) & 0x1Fu;
  std::uint32_t mant = bits & 0x03FFu;

  if (exp == 0) {
    if (mant == 0) return std::bit_cast<float>(sign);  // signed zero
    // Subnormal: normalize into binary32's normal range.
    exp = 1;
    while ((mant & 0x0400u) == 0) {
      mant <<= 1;
      --exp;
    }
    mant &= 0x03FFu;
    return std::bit_cast<float>(sign | ((exp + 112u) << 23) | (mant << 13));
  }
  if (exp == 31u) {
    // Inf / NaN. NaNs are quieted on widening (set the binary16 quiet
    // bit before the shift), matching hardware F16C (vcvtph2ps).
    if (mant != 0) mant |= 0x0200u;
    return std::bit_cast<float>(sign | 0x7F800000u | (mant << 13));
  }
  return std::bit_cast<float>(sign | ((exp + 112u) << 23) | (mant << 13));
}

std::ostream& operator<<(std::ostream& os, Half h) {
  return os << static_cast<float>(h);
}

}  // namespace tofmcl
