#pragma once
/// \file half.hpp
/// \brief Software IEEE-754 binary16 ("half") floating point.
///
/// GAP9's FPU supports FP16 storage with single-precision compute; the
/// paper's fp16qm configuration stores each particle's pose and weight as
/// FP16 to halve the particle memory (16 B/particle instead of 32 B with
/// double buffering). This type reproduces that behaviour on the host:
/// storage is a 16-bit pattern, all arithmetic promotes to float and
/// results round back with round-to-nearest-even, exactly like a
/// store-after-compute on the target.
///
/// The implementation is self-contained bit manipulation — no compiler
/// extensions — so results are identical across hosts.

#include <cstdint>
#include <iosfwd>
#include <limits>

namespace tofmcl {

/// Convert a float bit pattern to the nearest binary16 bit pattern
/// (round-to-nearest-even). Overflow produces infinity; NaNs are preserved
/// as quiet NaNs with truncated payload.
std::uint16_t float_to_half_bits(float value) noexcept;

/// Convert a binary16 bit pattern to the exactly-representable float.
float half_bits_to_float(std::uint16_t bits) noexcept;

/// IEEE-754 binary16 value type. Trivially copyable, 2 bytes.
class Half {
 public:
  constexpr Half() = default;
  /// Converting constructor rounds to nearest-even.
  explicit Half(float value) noexcept : bits_(float_to_half_bits(value)) {}
  explicit Half(double value) noexcept
      : bits_(float_to_half_bits(static_cast<float>(value))) {}

  /// Reinterpret a raw bit pattern as a Half.
  static constexpr Half from_bits(std::uint16_t bits) noexcept {
    Half h;
    h.bits_ = bits;
    return h;
  }

  constexpr std::uint16_t bits() const noexcept { return bits_; }

  /// Widening conversion is implicit: every binary16 value is exactly
  /// representable in binary32.
  operator float() const noexcept { return half_bits_to_float(bits_); }

  Half operator-() const noexcept {
    return from_bits(static_cast<std::uint16_t>(bits_ ^ 0x8000u));
  }

  Half& operator+=(Half o) noexcept {
    *this = Half(static_cast<float>(*this) + static_cast<float>(o));
    return *this;
  }
  Half& operator-=(Half o) noexcept {
    *this = Half(static_cast<float>(*this) - static_cast<float>(o));
    return *this;
  }
  Half& operator*=(Half o) noexcept {
    *this = Half(static_cast<float>(*this) * static_cast<float>(o));
    return *this;
  }
  Half& operator/=(Half o) noexcept {
    *this = Half(static_cast<float>(*this) / static_cast<float>(o));
    return *this;
  }

  bool is_nan() const noexcept {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  bool is_inf() const noexcept { return (bits_ & 0x7FFFu) == 0x7C00u; }
  bool is_zero() const noexcept { return (bits_ & 0x7FFFu) == 0; }
  bool is_subnormal() const noexcept {
    return (bits_ & 0x7C00u) == 0 && (bits_ & 0x03FFu) != 0;
  }
  bool sign_bit() const noexcept { return (bits_ & 0x8000u) != 0; }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2, "Half must be exactly 2 bytes");

// Arithmetic promotes to float and rounds the result back to binary16 —
// the semantics of compute-in-fp32/store-in-fp16 hardware.
inline Half operator+(Half a, Half b) noexcept {
  return Half(static_cast<float>(a) + static_cast<float>(b));
}
inline Half operator-(Half a, Half b) noexcept {
  return Half(static_cast<float>(a) - static_cast<float>(b));
}
inline Half operator*(Half a, Half b) noexcept {
  return Half(static_cast<float>(a) * static_cast<float>(b));
}
inline Half operator/(Half a, Half b) noexcept {
  return Half(static_cast<float>(a) / static_cast<float>(b));
}

// Comparisons follow IEEE semantics via the float promotion (NaN compares
// false with everything except !=).
inline bool operator==(Half a, Half b) noexcept {
  return static_cast<float>(a) == static_cast<float>(b);
}
inline bool operator!=(Half a, Half b) noexcept { return !(a == b); }
inline bool operator<(Half a, Half b) noexcept {
  return static_cast<float>(a) < static_cast<float>(b);
}
inline bool operator>(Half a, Half b) noexcept { return b < a; }
inline bool operator<=(Half a, Half b) noexcept {
  return static_cast<float>(a) <= static_cast<float>(b);
}
inline bool operator>=(Half a, Half b) noexcept { return b <= a; }

std::ostream& operator<<(std::ostream& os, Half h);

namespace half_literals {
/// 1.5_h style literals for tests and examples.
inline Half operator""_h(long double v) {
  return Half(static_cast<float>(v));
}
}  // namespace half_literals

}  // namespace tofmcl

/// numeric_limits for tofmcl::Half (the members relevant to this library).
template <>
class std::numeric_limits<tofmcl::Half> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int digits = 11;     // implicit bit + 10 mantissa bits
  static constexpr int max_exponent = 16;
  static constexpr int min_exponent = -13;

  /// Smallest positive normal: 2^-14 ≈ 6.10e-5.
  static constexpr tofmcl::Half min() noexcept {
    return tofmcl::Half::from_bits(0x0400);
  }
  /// Largest finite: 65504.
  static constexpr tofmcl::Half max() noexcept {
    return tofmcl::Half::from_bits(0x7BFF);
  }
  static constexpr tofmcl::Half lowest() noexcept {
    return tofmcl::Half::from_bits(0xFBFF);
  }
  /// Smallest positive subnormal: 2^-24 ≈ 5.96e-8.
  static constexpr tofmcl::Half denorm_min() noexcept {
    return tofmcl::Half::from_bits(0x0001);
  }
  /// Machine epsilon: 2^-10.
  static constexpr tofmcl::Half epsilon() noexcept {
    return tofmcl::Half::from_bits(0x1400);
  }
  static constexpr tofmcl::Half infinity() noexcept {
    return tofmcl::Half::from_bits(0x7C00);
  }
  static constexpr tofmcl::Half quiet_NaN() noexcept {
    return tofmcl::Half::from_bits(0x7E00);
  }
};
