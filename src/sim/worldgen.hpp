#pragma once
/// \file worldgen.hpp
/// \brief Seeded procedural generation of evaluation worlds.
///
/// The source paper evaluates in one structured maze arena (Section IV-A);
/// follow-up floor-plan localization (Zimmerman et al., arXiv:2310.12536)
/// and depth-based avoidance (Müller et al., arXiv:2208.12624) move to
/// realistic buildings and dynamic scenes. This module opens that axis: a
/// deterministic generator family turning a (kind, seed) pair into a full
/// EvaluationEnvironment plus flyable tour plans, so campaigns sweep an
/// unbounded set of worlds instead of the two fixed mazes.
///
/// Kinds:
///   * Office       — central corridor with rooms off both sides, one
///                    doorway per room, wall-mounted feature pillars.
///   * Warehouse    — open hall with solid shelving/pallet clutter
///                    separated by guaranteed-width aisles.
///   * LoopCorridor — ring corridor around a solid core, symmetry broken
///                    by randomly placed pillars.
///
/// Every generated world is validated structurally at build time: all
/// points of interest must be mutually reachable via plan::plan_path on
/// the rasterized grid, which is also how the tour flight plans are
/// produced (A* + line-of-sight simplification → waypoints).

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"

namespace tofmcl::sim {

/// Which procedural family a world comes from.
enum class GeneratedWorldKind : std::uint8_t {
  kOffice,
  kWarehouse,
  kLoopCorridor,
};
const char* to_string(GeneratedWorldKind kind);

/// All generator knobs. Defaults produce a 9 m × 6 m building — rooms and
/// aisles sized so walls stay inside the ToF ranging distance (4 m) and
/// mostly inside the EDT truncation radius (1.5 m), like the paper's
/// corridors.
struct WorldGenConfig {
  std::uint64_t seed = 1;
  double width_m = 9.0;   ///< Exterior width.
  double height_m = 6.0;  ///< Exterior height.
  /// Doorway gap width; must comfortably pass the drone (Crazyflie
  /// diameter ≈ 0.1 m plus control margin).
  double doorway_m = 0.7;
  double drone_diameter_m = 0.1;

  // --- office ---
  double corridor_m = 1.4;  ///< Central corridor width.
  double min_room_m = 1.8;  ///< Minimum room width along the corridor.
  double max_room_m = 3.2;  ///< Target maximum room width.

  // --- warehouse ---
  std::size_t clutter_count = 12;   ///< Shelving/pallet boxes to attempt.
  double clutter_min_m = 0.35;      ///< Box edge range.
  double clutter_max_m = 0.9;
  double aisle_m = 0.8;             ///< Guaranteed gap between boxes/walls.

  // --- loop corridor ---
  double loop_corridor_m = 1.2;  ///< Ring width around the solid core.
  std::size_t loop_pillars = 5;  ///< Symmetry-breaking wall pillars.

  /// Patrol length of the primary tour plan (plan 0): laps > 1 turns it
  /// into an out-and-back patrol that retraces the tour route — forward,
  /// back, forward, … — so missions can outlast the single-tour duration
  /// (pair with a raised sequence timeout; the generator's historical cap
  /// is 180 s). 1 reproduces the classic single tour bit for bit; the
  /// reverse and shuttle plans are never affected.
  std::size_t tour_laps = 1;
};

/// A generated world: the environment, its landmark points (room centers,
/// aisle nodes, ring corners — all guaranteed traversable) and ≥ 3 tour
/// flight plans planned through it (0: forward tour, 1: reverse tour,
/// 2: shuttle between the two farthest points).
struct GeneratedWorld {
  GeneratedWorldKind kind = GeneratedWorldKind::kOffice;
  WorldGenConfig config;
  EvaluationEnvironment env;
  std::vector<Vec2> points_of_interest;
  std::vector<FlightPlan> plans;
};

/// Generates a world. Deterministic: equal (kind, config) produce
/// bit-identical worlds, whatever process or thread runs the generator.
/// Throws PreconditionError when the config is unbuildable (e.g. rooms
/// that cannot fit) — never returns a world whose points of interest are
/// not mutually reachable.
GeneratedWorld generate_world(GeneratedWorldKind kind,
                              const WorldGenConfig& config = {});

// ---- Stale-map mutation operators ----------------------------------------
//
// Lifelong localization flies against maps that have gone stale: furniture
// moved, doors closed, clutter accumulated since the floor plan was
// recorded (the regime the floor-plan follow-up, Zimmerman et al.,
// arXiv:2310.12536, targets). mutate_world() turns any evaluation
// environment into a seeded "what the building looks like TODAY" variant;
// campaigns fly and sense the mutated world while the localizer keeps the
// pristine map.

/// How aggressively mutate_world rearranges a world. kNone applies no
/// operator and returns the input environment bit-identically.
enum class MutationLevel : std::uint8_t { kNone, kLight, kHeavy };
const char* to_string(MutationLevel level);

/// Operator intensities. Counts left at 0 take the level's preset
/// (kLight: a few changes; kHeavy: a rearranged building); kNone forces
/// every count to 0 whatever is set.
struct MutationConfig {
  MutationLevel level = MutationLevel::kLight;
  /// Clearance every added or moved wall keeps to the flight routes, so
  /// the recorded tours stay flyable through the mutated world (m).
  double route_clearance_m = 0.4;
  std::size_t clutter_add = 0;    ///< People/cart-sized static boxes dropped.
  std::size_t boxes_moved = 0;    ///< Solid boxes (shelving, bays) relocated.
  std::size_t boxes_removed = 0;  ///< Solid boxes deleted (bays widen).
  std::size_t doors_closed = 0;   ///< Doorway gaps walled off or narrowed.
  double clutter_min_m = 0.3;     ///< Added-box edge range.
  double clutter_max_m = 0.6;
};

/// What a mutate_world call actually applied (operators are rejection
/// sampled, so intensities are ceilings, not guarantees).
struct MutationSummary {
  std::size_t clutter_added = 0;
  std::size_t boxes_moved = 0;
  std::size_t boxes_removed = 0;
  std::size_t doors_closed = 0;    ///< Gaps fully walled off (off-route).
  std::size_t doors_narrowed = 0;  ///< On-route gaps shrunk, still flyable.
};

/// Returns a mutated copy of `env`: shelving moved or removed, doorways
/// closed or narrowed, static clutter scattered — each operator seeded
/// from `seed` and deterministic across processes. Invariants, enforced
/// per operator and re-validated by A* over every plan's waypoint chain:
///   * solid-box interiors stay Unknown (added clutter joins
///     `solid_regions`; removed boxes leave cleanly — outline segments and
///     region entry go together);
///   * every route in `plans` remains flyable (mutations keep
///     `route_clearance_m` from the polylines; door narrowing keeps the
///     gap above the drone's corridor minimum).
/// Throws PreconditionError if a mutated world fails the A* re-validation
/// (cannot happen for clearances ≥ the planner's traversability floor).
EvaluationEnvironment mutate_world(const EvaluationEnvironment& env,
                                   const std::vector<FlightPlan>& plans,
                                   const MutationConfig& config,
                                   std::uint64_t seed,
                                   MutationSummary* summary = nullptr);

}  // namespace tofmcl::sim
