#include "sim/worldgen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "map/distance_map.hpp"
#include "plan/astar.hpp"

namespace tofmcl::sim {

namespace {

constexpr double kPillarSide = 0.15;
constexpr double kPlanResolution = 0.05;

/// Planner settings for tour construction: clearance floor well above the
/// rasterized wall inflation plus the controller's corner-cutting
/// tolerance, so flown paths never clip a wall.
plan::PlannerConfig tour_planner() {
  plan::PlannerConfig pc;
  pc.min_clearance_m = 0.2;
  pc.comfort_clearance_m = 0.45;
  return pc;
}

void validate(const WorldGenConfig& c) {
  TOFMCL_EXPECTS(c.width_m >= 4.0 && c.height_m >= 4.0,
                 "generated worlds must be at least 4 m x 4 m");
  TOFMCL_EXPECTS(c.doorway_m >= c.drone_diameter_m + 0.4,
                 "doorways must pass the drone with control margin");
  TOFMCL_EXPECTS(c.min_room_m >= c.doorway_m + 0.3,
                 "rooms must be wide enough to hold a doorway");
  TOFMCL_EXPECTS(c.max_room_m > c.min_room_m, "max room must exceed min");
  TOFMCL_EXPECTS(c.corridor_m >= 0.8 && c.loop_corridor_m >= 0.8,
                 "corridors must be flyable");
  TOFMCL_EXPECTS(c.clutter_min_m > 0.0 && c.clutter_max_m >= c.clutter_min_m,
                 "clutter size range is inverted");
  TOFMCL_EXPECTS(c.tour_laps >= 1, "a tour needs at least one lap");
}

/// Splits [0, span] into segments of width ∈ [min_w, ~max_w]; returns the
/// interior cut positions (strictly inside the span).
std::vector<double> split_span(double span, double min_w, double max_w,
                               Rng& rng) {
  std::vector<double> cuts;
  double x = 0.0;
  while (span - x > max_w) {
    double w = rng.uniform(min_w, max_w);
    if (span - (x + w) < min_w) break;  // remainder becomes the last room
    x += w;
    cuts.push_back(x);
  }
  return cuts;
}

/// A square feature pillar mounted on a wall, like the boxes in the
/// paper's physical maze: gives straight walls a range fingerprint inside
/// the EDT truncation radius.
void add_pillar(map::World& world, Vec2 corner) {
  world.add_rectangle({corner, corner + Vec2{kPillarSide, kPillarSide}});
}

/// A horizontal wall along y over [x0, x1] with door gaps cut out.
/// `gaps` holds (start, end) pairs, assumed sorted and disjoint.
void add_wall_with_gaps(map::World& world, double y, double x0, double x1,
                        const std::vector<std::pair<double, double>>& gaps) {
  double x = x0;
  for (const auto& [g0, g1] : gaps) {
    if (g0 - x > 1e-9) world.add_segment({x, y}, {g0, y});
    x = g1;
  }
  if (x1 - x > 1e-9) world.add_segment({x, y}, {x1, y});
}

void build_office(const WorldGenConfig& c, Rng& rng,
                  EvaluationEnvironment& env, std::vector<Vec2>& pois) {
  const double w = c.width_m;
  const double h = c.height_m;
  const double y_lo = h / 2.0 - c.corridor_m / 2.0;
  const double y_hi = h / 2.0 + c.corridor_m / 2.0;
  TOFMCL_EXPECTS(y_lo >= c.min_room_m * 0.6,
                 "office too low for rooms on both corridor sides");
  env.world.add_rectangle({{0.0, 0.0}, {w, h}});

  // One band of rooms on each side of the corridor. Each band: vertical
  // partition walls at the cuts, a corridor-facing wall with one doorway
  // per room, and a feature pillar on the exterior wall of every room.
  const auto build_band = [&](double band_lo, double band_hi, bool top) {
    const std::vector<double> cuts =
        split_span(w, c.min_room_m, c.max_room_m, rng);
    for (const double cut : cuts) {
      env.world.add_segment({cut, band_lo}, {cut, band_hi});
    }
    std::vector<double> edges{0.0};
    edges.insert(edges.end(), cuts.begin(), cuts.end());
    edges.push_back(w);
    const double wall_y = top ? band_lo : band_hi;
    std::vector<std::pair<double, double>> gaps;
    for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
      const double r0 = edges[i];
      const double r1 = edges[i + 1];
      const double g0 =
          rng.uniform(r0 + kPillarSide, r1 - kPillarSide - c.doorway_m);
      gaps.emplace_back(g0, g0 + c.doorway_m);
      // Pillar against the exterior wall, away from the partition walls.
      const double px = rng.uniform(r0 + 0.2, r1 - 0.2 - kPillarSide);
      add_pillar(env.world,
                 {px, top ? h - kPillarSide : 0.0});
      pois.push_back({(r0 + r1) / 2.0, (band_lo + band_hi) / 2.0});
    }
    add_wall_with_gaps(env.world, wall_y, 0.0, w, gaps);
  };
  build_band(y_hi, h, true);
  build_band(0.0, y_lo, false);

  // A pillar on one corridor end wall disambiguates the corridor's two
  // directions even before a doorway comes into view.
  const double py = rng.uniform(y_lo + 0.1, y_hi - 0.1 - kPillarSide);
  add_pillar(env.world, {0.0, py});

  pois.push_back({0.7, h / 2.0});
  pois.push_back({w - 0.7, h / 2.0});
}

double point_box_distance(Vec2 p, const Aabb& box) {
  const double dx =
      std::max({box.min.x - p.x, 0.0, p.x - box.max.x});
  const double dy =
      std::max({box.min.y - p.y, 0.0, p.y - box.max.y});
  return std::hypot(dx, dy);
}

void build_warehouse(const WorldGenConfig& c, Rng& rng,
                     EvaluationEnvironment& env, std::vector<Vec2>& pois) {
  const double w = c.width_m;
  const double h = c.height_m;
  env.world.add_rectangle({{0.0, 0.0}, {w, h}});

  // Shelving/pallet boxes dropped by rejection sampling: every box keeps
  // an aisle of at least aisle_m to every other box and to the exterior
  // walls, so the hall stays fully connected.
  std::vector<Aabb> boxes;
  for (std::size_t i = 0; i < c.clutter_count; ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double bw = rng.uniform(c.clutter_min_m, c.clutter_max_m);
      const double bh = rng.uniform(c.clutter_min_m, c.clutter_max_m);
      const double x0 = rng.uniform(c.aisle_m, w - c.aisle_m - bw);
      const double y0 = rng.uniform(c.aisle_m, h - c.aisle_m - bh);
      const Aabb box{{x0, y0}, {x0 + bw, y0 + bh}};
      const bool clear = std::none_of(
          boxes.begin(), boxes.end(), [&](const Aabb& other) {
            return box.min.x - c.aisle_m < other.max.x &&
                   box.max.x + c.aisle_m > other.min.x &&
                   box.min.y - c.aisle_m < other.max.y &&
                   box.max.y + c.aisle_m > other.min.y;
          });
      if (!clear) continue;
      env.world.add_rectangle(box);
      env.solid_regions.push_back(box);
      boxes.push_back(box);
      break;
    }
  }

  // Landmark points between the clutter: well clear of every box and
  // wall, mutually separated so tours actually traverse the hall.
  for (int attempt = 0; attempt < 400 && pois.size() < 6; ++attempt) {
    const Vec2 p{rng.uniform(0.7, w - 0.7), rng.uniform(0.7, h - 0.7)};
    const bool clear_of_boxes = std::all_of(
        boxes.begin(), boxes.end(),
        [&](const Aabb& b) { return point_box_distance(p, b) >= 0.5; });
    const bool separated = std::all_of(
        pois.begin(), pois.end(),
        [&](Vec2 q) { return (p - q).norm() >= 1.5; });
    if (clear_of_boxes && separated) pois.push_back(p);
  }
  TOFMCL_EXPECTS(pois.size() >= 3,
                 "warehouse generation left too few traversable landmarks");
}

void build_loop(const WorldGenConfig& c, Rng& rng,
                EvaluationEnvironment& env, std::vector<Vec2>& pois) {
  const double w = c.width_m;
  const double h = c.height_m;
  const double ring = c.loop_corridor_m;
  TOFMCL_EXPECTS(w > 3.0 * ring && h > 3.0 * ring,
                 "loop corridor leaves no solid core");
  env.world.add_rectangle({{0.0, 0.0}, {w, h}});
  const Aabb core{{ring, ring}, {w - ring, h - ring}};
  env.world.add_rectangle(core);
  env.solid_regions.push_back(core);

  // A bare ring is 180°-symmetric AND featureless along its straights
  // (the end walls sit beyond the ToF range on long sides), so both the
  // flip hypothesis and longitudinal drift must be broken by geometry:
  //  * bays — large storage alcoves bulging from the core into the ring —
  //    vary the corridor width over meter-scale spans (strong, always
  //    in-range longitudinal features), and
  //  * pillars at seeded random spots fingerprint the remaining walls.
  // One bay per side, placed asymmetrically.
  const double bay_depth =
      std::min(0.3, ring - c.doorway_m - 0.1);  // keep the ring flyable
  for (int side = 0; side < 4; ++side) {
    const bool horizontal = side == 0 || side == 1;
    const double side_len = (horizontal ? w : h) - 2.0 * (ring + 0.8);
    if (side_len < 1.2 || bay_depth < 0.15) continue;
    const double len = rng.uniform(1.0, std::min(2.0, side_len));
    const double pos = ring + 0.8 + rng.uniform(0.0, side_len - len);
    Aabb bay;
    switch (side) {
      case 0: bay = {{pos, core.min.y - bay_depth},
                     {pos + len, core.min.y}}; break;
      case 1: bay = {{pos, core.max.y},
                     {pos + len, core.max.y + bay_depth}}; break;
      case 2: bay = {{core.min.x - bay_depth, pos},
                     {core.min.x, pos + len}}; break;
      default: bay = {{core.max.x, pos},
                      {core.max.x + bay_depth, pos + len}}; break;
    }
    env.world.add_rectangle(bay);
    env.solid_regions.push_back(bay);
  }
  for (std::size_t i = 0; i < c.loop_pillars; ++i) {
    const int side = static_cast<int>(rng.uniform_index(4));
    const bool horizontal = side == 0 || side == 1;
    const double span = (horizontal ? w : h) - 2.0 * (ring + 0.6);
    const double pos = ring + 0.6 + rng.uniform(0.0, span - kPillarSide);
    Vec2 corner;
    switch (side) {
      case 0: corner = {pos, 0.0}; break;
      case 1: corner = {pos, h - kPillarSide}; break;
      case 2: corner = {0.0, pos}; break;
      default: corner = {w - kPillarSide, pos}; break;
    }
    add_pillar(env.world, corner);
  }

  const double mid = ring / 2.0;
  pois.push_back({mid, mid});
  pois.push_back({w - mid, mid});
  pois.push_back({w - mid, h - mid});
  pois.push_back({mid, h - mid});
}

/// Orders the points as a nearest-neighbor tour starting from index 0.
std::vector<Vec2> tour_order(const std::vector<Vec2>& pois) {
  std::vector<Vec2> remaining(pois.begin() + 1, pois.end());
  std::vector<Vec2> tour{pois.front()};
  while (!remaining.empty()) {
    const Vec2 cur = tour.back();
    const auto next = std::min_element(
        remaining.begin(), remaining.end(), [&](Vec2 a, Vec2 b) {
          return (a - cur).squared_norm() < (b - cur).squared_norm();
        });
    tour.push_back(*next);
    remaining.erase(next);
  }
  return tour;
}

FlightPlan plan_from_waypoints(std::string name,
                               const std::vector<Vec2>& points,
                               double speed) {
  TOFMCL_EXPECTS(points.size() >= 2, "flight plan needs at least two points");
  FlightPlan plan;
  plan.name = std::move(name);
  const Vec2 first_leg = points[1] - points[0];
  plan.start = {points[0], std::atan2(first_leg.y, first_leg.x)};
  for (std::size_t i = 1; i < points.size(); ++i) {
    plan.path.push_back({points[i], speed});
  }
  // Tighter waypoint tolerance than the hand-tuned maze plans: generated
  // corridors were planned with 0.2 m clearance, so corner cutting must
  // stay inside that margin.
  plan.controller.waypoint_tolerance_m = 0.1;
  return plan;
}

/// Plans the tour route through the rasterized world and converts it into
/// the standard three flight plans. Throws when any landmark is
/// unreachable — the structural invariant of every generated world.
std::vector<FlightPlan> make_plans(const GeneratedWorld& world,
                                   const std::vector<Vec2>& pois) {
  const map::OccupancyGrid grid =
      rasterize_environment(world.env, kPlanResolution, 0.0);
  const map::DistanceMap distance(grid, 1.0);
  const plan::PlannerConfig pc = tour_planner();

  const std::vector<Vec2> tour = tour_order(pois);
  std::vector<Vec2> route{tour.front()};
  for (std::size_t i = 0; i + 1 < tour.size(); ++i) {
    const auto leg = plan::plan_path(grid, distance, tour[i], tour[i + 1], pc);
    TOFMCL_EXPECTS(leg.has_value(),
                   "generated world has an unreachable landmark");
    // Skip the leg's first waypoint: it coincides with the previous leg's
    // last one.
    route.insert(route.end(), leg->waypoints.begin() + 1,
                 leg->waypoints.end());
  }

  const std::string base =
      std::string(to_string(world.kind)) + "_s" +
      std::to_string(world.config.seed);
  std::vector<FlightPlan> plans;
  std::vector<Vec2> reversed(route.rbegin(), route.rend());
  if (world.config.tour_laps > 1) {
    // Patrol: retrace the planned route out-and-back so every lap starts
    // where the previous one ended — no extra planning, and the path stays
    // inside the validated clearance corridor for any lap count.
    std::vector<Vec2> patrol = route;
    for (std::size_t lap = 1; lap < world.config.tour_laps; ++lap) {
      const std::vector<Vec2>& leg = (lap % 2 == 1) ? reversed : route;
      patrol.insert(patrol.end(), leg.begin() + 1, leg.end());
    }
    plans.push_back(plan_from_waypoints(
        base + "_patrol_x" + std::to_string(world.config.tour_laps), patrol,
        0.35));
  } else {
    plans.push_back(plan_from_waypoints(base + "_tour", route, 0.35));
  }
  plans.push_back(plan_from_waypoints(base + "_reverse", reversed, 0.35));

  // Shuttle: out and back between the tour start and the farthest
  // landmark, following the already-planned tour route up to it.
  std::size_t far_idx = 1;
  double far_d = 0.0;
  for (std::size_t i = 1; i < tour.size(); ++i) {
    const double d = (tour[i] - tour.front()).norm();
    if (d > far_d) {
      far_d = d;
      far_idx = i;
    }
  }
  const auto leg =
      plan::plan_path(grid, distance, tour.front(), tour[far_idx], pc);
  TOFMCL_EXPECTS(leg.has_value(),
                 "generated world has an unreachable landmark");
  std::vector<Vec2> shuttle = leg->waypoints;
  shuttle.insert(shuttle.end(), leg->waypoints.rbegin() + 1,
                 leg->waypoints.rend());
  plans.push_back(plan_from_waypoints(base + "_shuttle", shuttle, 0.4));
  return plans;
}

}  // namespace

const char* to_string(GeneratedWorldKind kind) {
  switch (kind) {
    case GeneratedWorldKind::kOffice:
      return "office";
    case GeneratedWorldKind::kWarehouse:
      return "warehouse";
    case GeneratedWorldKind::kLoopCorridor:
      return "loop_corridor";
  }
  return "unknown";
}

const char* to_string(MutationLevel level) {
  switch (level) {
    case MutationLevel::kNone:
      return "none";
    case MutationLevel::kLight:
      return "light";
    case MutationLevel::kHeavy:
      return "heavy";
  }
  return "unknown";
}

namespace {

/// Level presets: a count left at 0 in the config takes these. kLight is
/// "someone tidied up over the weekend"; kHeavy is "the floor got
/// rearranged since the map was recorded".
std::size_t preset(std::size_t configured, MutationLevel level,
                   std::size_t light, std::size_t heavy) {
  if (configured > 0) return configured;
  return level == MutationLevel::kHeavy ? heavy : light;
}

/// Distance from point p to the segment a–b.
double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.squared_norm();
  if (len2 <= 0.0) return (p - a).norm();
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return (p - (a + ab * t)).norm();
}

/// Distance between two segments (0 when they intersect).
double segment_segment_distance(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  const Vec2 ab = b - a;
  const Vec2 cd = d - c;
  const double d1 = ab.cross(c - a);
  const double d2 = ab.cross(d - a);
  const double d3 = cd.cross(a - c);
  const double d4 = cd.cross(b - c);
  if (((d1 > 0.0) != (d2 > 0.0)) && ((d3 > 0.0) != (d4 > 0.0))) return 0.0;
  return std::min(
      std::min(point_segment_distance(a, c, d),
               point_segment_distance(b, c, d)),
      std::min(point_segment_distance(c, a, b),
               point_segment_distance(d, a, b)));
}

/// Distance from segment a–b to an axis-aligned box (0 when intersecting
/// or inside).
double segment_box_distance(Vec2 a, Vec2 b, const Aabb& box) {
  if (box.contains(a) || box.contains(b)) return 0.0;
  const Vec2 corners[4] = {box.min,
                           {box.max.x, box.min.y},
                           box.max,
                           {box.min.x, box.max.y}};
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 4; ++i) {
    best = std::min(best, segment_segment_distance(a, b, corners[i],
                                                   corners[(i + 1) % 4]));
  }
  return best;
}

/// Every flight-route polyline (start pose + waypoints), ready for
/// clearance checks against candidate mutations.
std::vector<std::vector<Vec2>> route_polylines(
    const std::vector<FlightPlan>& plans) {
  std::vector<std::vector<Vec2>> routes;
  routes.reserve(plans.size());
  for (const FlightPlan& plan : plans) {
    std::vector<Vec2> route{plan.start.position};
    for (const Waypoint& wp : plan.path) route.push_back(wp.position);
    routes.push_back(std::move(route));
  }
  return routes;
}

double routes_to_box_distance(const std::vector<std::vector<Vec2>>& routes,
                              const Aabb& box) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& route : routes) {
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      best = std::min(best,
                      segment_box_distance(route[i], route[i + 1], box));
    }
  }
  return best;
}

double routes_to_segment_distance(
    const std::vector<std::vector<Vec2>>& routes, Vec2 a, Vec2 b) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& route : routes) {
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      best = std::min(best,
                      segment_segment_distance(route[i], route[i + 1], a, b));
    }
  }
  return best;
}

bool nearly_equal(Vec2 a, Vec2 b) {
  return std::abs(a.x - b.x) < 1e-9 && std::abs(a.y - b.y) < 1e-9;
}

/// Removes the four outline segments of `box` from the world (they were
/// added by add_rectangle with these exact corners). Returns false — and
/// leaves the world untouched — when not all four edges are present.
bool remove_box_outline(map::World& world, const Aabb& box) {
  const Vec2 bl = box.min;
  const Vec2 br{box.max.x, box.min.y};
  const Vec2 tr = box.max;
  const Vec2 tl{box.min.x, box.max.y};
  const std::pair<Vec2, Vec2> edges[4] = {
      {bl, br}, {br, tr}, {tr, tl}, {tl, bl}};
  std::vector<map::Segment> kept;
  kept.reserve(world.segments().size());
  bool found[4] = {false, false, false, false};
  for (const map::Segment& s : world.segments()) {
    bool is_edge = false;
    for (int i = 0; i < 4; ++i) {
      if (found[i]) continue;
      const auto& [ea, eb] = edges[i];
      if ((nearly_equal(s.a, ea) && nearly_equal(s.b, eb)) ||
          (nearly_equal(s.a, eb) && nearly_equal(s.b, ea))) {
        found[i] = true;
        is_edge = true;
        break;
      }
    }
    if (!is_edge) kept.push_back(s);
  }
  if (!(found[0] && found[1] && found[2] && found[3])) return false;
  world = map::World(std::move(kept));
  return true;
}

/// True when `box`, inflated by `margin`, is clear of every world segment,
/// every solid region, every route polyline (by route_clearance) and lies
/// inside one maze region away from its border.
bool box_placement_clear(const EvaluationEnvironment& env,
                         const std::vector<std::vector<Vec2>>& routes,
                         const Aabb& box, double margin,
                         double route_clearance) {
  const Aabb inflated{{box.min.x - margin, box.min.y - margin},
                      {box.max.x + margin, box.max.y + margin}};
  const bool inside_region = std::any_of(
      env.maze_regions.begin(), env.maze_regions.end(),
      [&](const Aabb& region) {
        return inflated.min.x > region.min.x &&
               inflated.min.y > region.min.y &&
               inflated.max.x < region.max.x && inflated.max.y < region.max.y;
      });
  if (!inside_region) return false;
  for (const Aabb& solid : env.solid_regions) {
    if (inflated.min.x < solid.max.x && inflated.max.x > solid.min.x &&
        inflated.min.y < solid.max.y && inflated.max.y > solid.min.y) {
      return false;
    }
  }
  for (const map::Segment& s : env.world.segments()) {
    if (segment_box_distance(s.a, s.b, inflated) <= 0.0) return false;
  }
  return routes_to_box_distance(routes, box) >= route_clearance;
}

/// A doorway: a gap between two collinear axis-aligned wall segments.
struct Doorway {
  Vec2 a;  ///< Gap start (end of one wall).
  Vec2 b;  ///< Gap end (start of the next wall).
};

/// Detects doorway-sized gaps between collinear wall runs along one axis.
/// `horizontal` selects segments with equal y (gaps along x) vs equal x.
void detect_doorways(const map::World& world, bool horizontal,
                     std::vector<Doorway>& out) {
  struct Run {
    double line;  ///< Shared coordinate (y for horizontal walls).
    double lo, hi;
  };
  std::vector<Run> runs;
  for (const map::Segment& s : world.segments()) {
    if (horizontal && std::abs(s.a.y - s.b.y) < 1e-9) {
      runs.push_back({s.a.y, std::min(s.a.x, s.b.x), std::max(s.a.x, s.b.x)});
    } else if (!horizontal && std::abs(s.a.x - s.b.x) < 1e-9) {
      runs.push_back({s.a.x, std::min(s.a.y, s.b.y), std::max(s.a.y, s.b.y)});
    }
  }
  std::sort(runs.begin(), runs.end(), [](const Run& a, const Run& b) {
    return std::tie(a.line, a.lo) < std::tie(b.line, b.lo);
  });
  for (std::size_t i = 0; i + 1 < runs.size(); ++i) {
    const Run& cur = runs[i];
    const Run& next = runs[i + 1];
    if (std::abs(cur.line - next.line) > 1e-9) continue;
    const double gap = next.lo - cur.hi;
    if (gap < 0.4 || gap > 1.2) continue;
    if (horizontal) {
      out.push_back({{cur.hi, cur.line}, {next.lo, cur.line}});
    } else {
      out.push_back({{cur.line, cur.hi}, {cur.line, next.lo}});
    }
  }
}

/// Drone-corridor floor a narrowed doorway must keep: diameter plus the
/// controller's waypoint tolerance on both sides.
constexpr double kMinNarrowedGap = 0.55;

/// Validation planner: traversability floor well below every clearance the
/// operators keep, so a passing mutation can never strand the tour.
plan::PlannerConfig validation_planner() {
  plan::PlannerConfig pc;
  pc.min_clearance_m = 0.08;
  pc.comfort_clearance_m = 0.2;
  return pc;
}

}  // namespace

EvaluationEnvironment mutate_world(const EvaluationEnvironment& env,
                                   const std::vector<FlightPlan>& plans,
                                   const MutationConfig& config,
                                   std::uint64_t seed,
                                   MutationSummary* summary) {
  MutationSummary local;
  MutationSummary& out = summary != nullptr ? *summary : local;
  out = {};
  if (config.level == MutationLevel::kNone) return env;
  TOFMCL_EXPECTS(!env.maze_regions.empty(),
                 "mutation needs at least one structured region to work in");
  TOFMCL_EXPECTS(config.route_clearance_m >= 0.15,
                 "route clearance below the flyable floor");
  TOFMCL_EXPECTS(config.clutter_min_m > 0.0 &&
                     config.clutter_max_m >= config.clutter_min_m,
                 "clutter size range is inverted");

  const std::size_t n_clutter =
      preset(config.clutter_add, config.level, 3, 8);
  const std::size_t n_moved = preset(config.boxes_moved, config.level, 1, 3);
  const std::size_t n_removed =
      preset(config.boxes_removed, config.level, 0, 2);
  const std::size_t n_doors = preset(config.doors_closed, config.level, 1, 3);

  EvaluationEnvironment mutated = env;
  const std::vector<std::vector<Vec2>> routes = route_polylines(plans);
  // Decorrelate from the worldgen stream: mutation seed 1 must not replay
  // generator seed 1's draws.
  Rng rng(SplitMix64(seed ^ 0xA5A5F00DD00DF005ULL).next());

  // 1. Remove solid boxes (vanished shelving; a removed loop bay widens
  //    the ring). Large blobs — the loop core — are structural, not
  //    furniture: never touch boxes above the furniture-area ceiling.
  const auto movable = [&](const Aabb& box) { return box.area() <= 2.0; };
  for (std::size_t i = 0; i < n_removed; ++i) {
    std::vector<std::size_t> candidates;
    for (std::size_t j = 0; j < mutated.solid_regions.size(); ++j) {
      if (movable(mutated.solid_regions[j])) candidates.push_back(j);
    }
    if (candidates.empty()) break;
    const std::size_t pick = candidates[rng.uniform_index(candidates.size())];
    const Aabb box = mutated.solid_regions[pick];
    if (!remove_box_outline(mutated.world, box)) continue;
    mutated.solid_regions.erase(mutated.solid_regions.begin() +
                                static_cast<std::ptrdiff_t>(pick));
    ++out.boxes_removed;
  }

  // 2. Move solid boxes: remove, then rejection-sample a nearby placement
  //    keeping the aisle margin and route clearance. An unplaceable box is
  //    restored where it stood.
  for (std::size_t i = 0; i < n_moved; ++i) {
    std::vector<std::size_t> candidates;
    for (std::size_t j = 0; j < mutated.solid_regions.size(); ++j) {
      if (movable(mutated.solid_regions[j])) candidates.push_back(j);
    }
    if (candidates.empty()) break;
    const std::size_t pick = candidates[rng.uniform_index(candidates.size())];
    const Aabb box = mutated.solid_regions[pick];
    if (!remove_box_outline(mutated.world, box)) continue;
    mutated.solid_regions.erase(mutated.solid_regions.begin() +
                                static_cast<std::ptrdiff_t>(pick));
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const Vec2 shift{rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5)};
      const Aabb moved{box.min + shift, box.max + shift};
      if (!box_placement_clear(mutated, routes, moved, 0.25,
                               config.route_clearance_m)) {
        continue;
      }
      mutated.world.add_rectangle(moved);
      mutated.solid_regions.push_back(moved);
      placed = true;
    }
    if (placed) {
      ++out.boxes_moved;
    } else {
      mutated.world.add_rectangle(box);
      mutated.solid_regions.push_back(box);
    }
  }

  // 3. Close or narrow doorways. A gap the routes never thread can be
  //    walled off entirely; a gap on the route is narrowed symmetrically,
  //    never below the drone-corridor floor.
  if (n_doors > 0) {
    std::vector<Doorway> doors;
    detect_doorways(mutated.world, true, doors);
    detect_doorways(mutated.world, false, doors);
    std::size_t applied = 0;
    for (std::size_t i = 0; i < doors.size() && applied < n_doors; ++i) {
      // Deterministic random order: swap a remaining candidate forward.
      const std::size_t pick =
          i + rng.uniform_index(doors.size() - i);
      std::swap(doors[i], doors[pick]);
      const Doorway& door = doors[i];
      if (routes_to_segment_distance(routes, door.a, door.b) >=
          config.route_clearance_m) {
        mutated.world.add_segment(door.a, door.b);
        ++out.doors_closed;
        ++applied;
        continue;
      }
      const double gap = (door.b - door.a).norm();
      const double shrink = std::min(0.15, (gap - kMinNarrowedGap) / 2.0);
      if (shrink < 0.05) continue;
      const Vec2 dir = (door.b - door.a).normalized();
      mutated.world.add_segment(door.a, door.a + dir * shrink);
      mutated.world.add_segment(door.b - dir * shrink, door.b);
      ++out.doors_narrowed;
      ++applied;
    }
  }

  // 4. Scatter people/cart-sized static clutter into free space, clear of
  //    the routes. Each box is a solid region: outline Occupied, interior
  //    Unknown — the loop-corridor lesson applies to mutations too.
  for (std::size_t i = 0; i < n_clutter; ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::size_t region_idx =
          rng.uniform_index(mutated.maze_regions.size());
      const Aabb& region = mutated.maze_regions[region_idx];
      const double bw = rng.uniform(config.clutter_min_m, config.clutter_max_m);
      const double bh = rng.uniform(config.clutter_min_m, config.clutter_max_m);
      if (region.width() < bw + 0.6 || region.height() < bh + 0.6) continue;
      const double x0 =
          rng.uniform(region.min.x + 0.2, region.max.x - 0.2 - bw);
      const double y0 =
          rng.uniform(region.min.y + 0.2, region.max.y - 0.2 - bh);
      const Aabb box{{x0, y0}, {x0 + bw, y0 + bh}};
      if (!box_placement_clear(mutated, routes, box, 0.2,
                               config.route_clearance_m)) {
        continue;
      }
      mutated.world.add_rectangle(box);
      mutated.solid_regions.push_back(box);
      ++out.clutter_added;
      break;
    }
  }

  // Re-validate: every plan's waypoint chain must still be A*-traversable
  // in the mutated world — the tour-reachability invariant, checked on the
  // same rasterized substrate campaigns fly through.
  const map::OccupancyGrid grid =
      rasterize_environment(mutated, kPlanResolution, 0.0);
  const map::DistanceMap distance(grid, 1.0);
  const plan::PlannerConfig pc = validation_planner();
  for (const FlightPlan& plan : plans) {
    Vec2 prev = plan.start.position;
    for (const Waypoint& wp : plan.path) {
      TOFMCL_EXPECTS(
          plan::plan_path(grid, distance, prev, wp.position, pc).has_value(),
          "map mutation severed a flight route");
      prev = wp.position;
    }
  }
  return mutated;
}

GeneratedWorld generate_world(GeneratedWorldKind kind,
                              const WorldGenConfig& config) {
  validate(config);
  GeneratedWorld world;
  world.kind = kind;
  world.config = config;

  // Decorrelate the kinds: the same seed must not produce eerily similar
  // geometry across generators.
  Rng rng(SplitMix64(config.seed ^
                     0x9E3779B97F4A7C15ULL *
                         (static_cast<std::uint64_t>(kind) + 1))
              .next());

  switch (kind) {
    case GeneratedWorldKind::kOffice:
      build_office(config, rng, world.env, world.points_of_interest);
      break;
    case GeneratedWorldKind::kWarehouse:
      build_warehouse(config, rng, world.env, world.points_of_interest);
      break;
    case GeneratedWorldKind::kLoopCorridor:
      build_loop(config, rng, world.env, world.points_of_interest);
      break;
  }
  world.env.maze_regions.push_back(
      {{0.0, 0.0}, {config.width_m, config.height_m}});
  world.env.structured_area_m2 = config.width_m * config.height_m;
  world.plans = make_plans(world, world.points_of_interest);
  return world;
}

}  // namespace tofmcl::sim
