#pragma once
/// \file maze.hpp
/// \brief Maze environments reproducing the paper's evaluation arena.
///
/// The paper flies in a physical 16 m² "drone maze" tracked by a Vicon
/// system and extends the localization map with three artificial mazes to
/// 31.2 m² of structured area (Section IV-A), which is what makes global
/// localization ambiguous (Fig 1: the filter initially locks onto the
/// wrong maze). This module provides:
///   * a fixed, hand-crafted 4 m × 4 m drone maze (corridors ≥ 0.4 m),
///   * procedurally generated artificial mazes (recursive division),
///   * the composite evaluation environment combining both.

#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "map/occupancy_grid.hpp"
#include "map/world.hpp"

namespace tofmcl::sim {

/// The physical maze the drone actually flies in: a 4×4 m box with
/// interior walls forming corridors, dead ends and one loop. Walls are
/// anchored at (0, 0)–(4, 4).
map::World drone_maze();

/// Structured area of drone_maze() in m² (16, matching the paper's Vicon
/// coverage).
constexpr double drone_maze_area() { return 16.0; }

/// A random maze over a size×size box via recursive division: walls with
/// door gaps wide enough for the drone, recursion stops at chambers around
/// 1 m. Deterministic for a given rng state.
map::World artificial_maze(Rng& rng, double size);

/// The composite evaluation environment.
struct EvaluationEnvironment {
  /// All wall segments: drone maze + artificial mazes (for rasterizing the
  /// localization map and for ray casting in the wrong-maze hypotheses).
  map::World world;
  /// Bounding boxes of each structured maze area; index 0 is the real
  /// drone maze where all flights happen.
  std::vector<Aabb> maze_regions;
  /// Boxes whose interior is solid matter (warehouse shelving, a loop
  /// corridor's inner block). Their outline segments rasterize to
  /// Occupied walls like any other; the interior is left Unknown instead
  /// of being marked Free, so no phantom free-space island forms inside —
  /// and no all-zero-EDT blob either, which would otherwise score as a
  /// perfect match for every beam and act as a particle sink. Empty for
  /// the mazes.
  std::vector<Aabb> solid_regions;
  /// Sum of maze region areas (≈ 31.2 m²).
  double structured_area_m2 = 0.0;
};

/// Builds the drone maze plus three artificial mazes laid out on a grid,
/// totalling ≈ 31.2 m² of structured area like the paper's extended map.
/// `seed` controls the artificial mazes.
EvaluationEnvironment evaluation_environment(std::uint64_t seed = 2023);

/// Rasterizes an evaluation environment into the localization grid:
/// interiors of maze regions are Free, walls Occupied, everything between
/// the mazes Unknown (the filter only ever hypothesizes inside structured
/// space, matching the paper's 31.2 m² accounting).
/// `map_error_sigma` jitters wall endpoints before rasterizing to model the
/// hand-measured map (0 = perfect map); the world itself is not modified.
map::OccupancyGrid rasterize_environment(const EvaluationEnvironment& env,
                                         double resolution = 0.05,
                                         double map_error_sigma = 0.01,
                                         std::uint64_t map_seed = 7);

}  // namespace tofmcl::sim
