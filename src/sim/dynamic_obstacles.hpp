#pragma once
/// \file dynamic_obstacles.hpp
/// \brief Moving entities composited into the rendered ToF beams.
///
/// The classic MCL robustness stressor: people-sized cylinders walk
/// waypoint tracks through the flight space while the LOCALIZER'S MAP
/// STAYS STATIC, so every beam that lands on an obstacle is an unmodeled
/// short return the observation model must absorb (depth-based
/// dynamic-obstacle work, e.g. Müller et al., arXiv:2208.12624, stresses
/// exactly this regime). An obstacle's position is a pure function of
/// time — no integration state — so dataset generation stays bit-exactly
/// reproducible whatever the execution schedule.

#include <cstddef>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "sensor/tof_sensor.hpp"

namespace tofmcl::sim {

struct FlightPlan;  // sim/sequence_generator.hpp (which includes this file)

/// One moving entity: a vertical cylinder shuttling along a polyline
/// track at constant speed, reversing at the ends (ping-pong), with a
/// start-time offset so co-located obstacles desynchronize.
struct DynamicObstacle {
  std::vector<Vec2> track;  ///< ≥ 2 points; piecewise-linear path.
  double speed_m_s = 0.8;   ///< Walking pace.
  double radius_m = 0.25;   ///< Person-sized cross section.
  double height_m = 1.8;    ///< Taller than the flight height: blocks beams.
  double phase_s = 0.0;     ///< Time offset along the shuttle cycle.
};

/// Position at time `t`: arc-length parameterized ping-pong traversal of
/// the track. Pure function of (obstacle, t). Degenerate tracks (fewer
/// than 2 points or zero length) pin the obstacle to its first point.
Vec2 obstacle_position(const DynamicObstacle& obstacle, double t);

/// Cross sections of all obstacles at time `t`, ready for compositing
/// into sensor::MultizoneToF::measure.
std::vector<sensor::CylinderObstacle> obstacle_circles(
    const std::vector<DynamicObstacle>& obstacles, double t);

/// Deterministically scatters `count` obstacles over the corridors of a
/// world: each obstacle shuttles on a short track CROSSING a random point
/// of a random flight plan's route, roughly perpendicular to the local
/// flight direction — the person-walks-through-the-corridor stressor.
/// Crossing tracks occlude the sensors transiently (seconds) rather than
/// pacing the drone down a corridor, which is what makes the degradation
/// survivable at all. Randomized phase desynchronizes the crossings. All
/// draws come from `rng`.
std::vector<DynamicObstacle> scatter_obstacles(
    const std::vector<FlightPlan>& plans, std::size_t count,
    double speed_m_s, Rng& rng);

/// The canonical seeded scatter: derives the obstacle rng from a dataset
/// seed and the obstacle count on a dedicated stream (so the flight/noise
/// stream of the static variant is untouched). Campaigns, the scenario
/// matrix and the examples all go through this one recipe — the tracks
/// for a given (data_seed, count, speed) are identical everywhere.
std::vector<DynamicObstacle> scatter_obstacles_seeded(
    const std::vector<FlightPlan>& plans, std::size_t count,
    double speed_m_s, std::uint64_t data_seed);

/// The corridor-pacing stressor: one pedestrian walking the FLIGHT ROUTE
/// itself. Its track is the plan's waypoint polyline and its phase puts it
/// `lead_m` of arc length ahead of the start at t = 0, so with a speed
/// near the drone's cruise it holds station in front of the forward sensor
/// for long stretches (and marches back THROUGH the drone at each
/// ping-pong reversal) — the sustained-occlusion regime that transient
/// crossing tracks never produce. Deterministic: a pure function of the
/// plan, no RNG stream is consumed.
DynamicObstacle pace_obstacle(const FlightPlan& plan, double lead_m,
                              double speed_m_s);

}  // namespace tofmcl::sim
