#pragma once
/// \file sequence_generator.hpp
/// \brief End-to-end flight simulation producing evaluation sequences.
///
/// Ties the substrates together: the kinematic drone follows a waypoint
/// plan through the maze while the gyro/flow models feed the EKF (the
/// drifting odometry) and the two multizone ToF sensors measure the true
/// world. The result is a Sequence — the same data triple the paper
/// recorded on the real platform.

#include <cstdint>
#include <string>
#include <vector>

#include "estimation/ekf.hpp"
#include "estimation/sensor_models.hpp"
#include "map/world.hpp"
#include "sensor/tof_sensor.hpp"
#include "sim/controller.hpp"
#include "sim/dataset.hpp"
#include "sim/drone.hpp"
#include "sim/dynamic_obstacles.hpp"

namespace tofmcl::sim {

/// All knobs of the data-generation pipeline.
struct SequenceGeneratorConfig {
  double sim_dt_s = 0.01;        ///< Physics/EKF tick (100 Hz).
  double odom_rate_hz = 50.0;    ///< Recorded state-estimate rate.
  double tof_rate_hz = 15.0;     ///< Per-sensor frame rate (8×8 limit).
  double timeout_s = 180.0;      ///< Abort limit for a plan.
  DroneConfig drone;
  estimation::GyroConfig gyro;
  estimation::FlowConfig flow;
  estimation::EkfConfig ekf;
  sensor::TofSensorConfig front_tof;  ///< Forward-facing sensor.
  sensor::TofSensorConfig rear_tof;   ///< Backward-facing sensor.
  /// Moving entities composited into every rendered ToF frame (the
  /// localization map never sees them). Empty = static world, and the
  /// generated data is bit-identical to the pre-obstacle pipeline.
  std::vector<DynamicObstacle> obstacles;
};

/// Config with the paper's deck layout: front sensor at +2 cm yaw 0,
/// rear sensor at −2 cm yaw π, both 8×8 at 15 Hz.
SequenceGeneratorConfig default_generator_config();

/// A named flight through the maze.
struct FlightPlan {
  std::string name;
  Pose2 start{};
  std::vector<Waypoint> path;
  ControllerConfig controller;
};

/// The six scripted evaluation flights through drone_maze(), mirroring the
/// paper's six recorded sequences: loops, tours in both directions, a fast
/// shuttle and a slow yaw-sweeping scan.
std::vector<FlightPlan> standard_flight_plans();

/// Simulate one flight. `rng` drives every noise source; pass generators
/// seeded per (sequence, repetition) for reproducible experiments.
Sequence generate_sequence(const map::World& world, const FlightPlan& plan,
                           const SequenceGeneratorConfig& config, Rng& rng);

}  // namespace tofmcl::sim
