#include "sim/dynamic_obstacles.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/sequence_generator.hpp"

namespace tofmcl::sim {

namespace {

double track_length(const std::vector<Vec2>& track) {
  double length = 0.0;
  for (std::size_t i = 0; i + 1 < track.size(); ++i) {
    length += (track[i + 1] - track[i]).norm();
  }
  return length;
}

/// Point at arc length `s` ∈ [0, length] along the polyline.
Vec2 point_at_arc_length(const std::vector<Vec2>& track, double s) {
  for (std::size_t i = 0; i + 1 < track.size(); ++i) {
    const double seg = (track[i + 1] - track[i]).norm();
    if (s <= seg) {
      return seg > 0.0 ? track[i] + (track[i + 1] - track[i]) * (s / seg)
                       : track[i];
    }
    s -= seg;
  }
  return track.back();
}

}  // namespace

Vec2 obstacle_position(const DynamicObstacle& obstacle, double t) {
  if (obstacle.track.empty()) return {};
  const double length = track_length(obstacle.track);
  if (obstacle.track.size() < 2 || length <= 0.0 ||
      obstacle.speed_m_s <= 0.0) {
    return obstacle.track.front();
  }
  // Ping-pong: fold distance traveled into [0, 2·length), reflect the
  // second half. fmod keeps this a pure function of t.
  double s = std::fmod((t + obstacle.phase_s) * obstacle.speed_m_s,
                       2.0 * length);
  if (s < 0.0) s += 2.0 * length;
  if (s > length) s = 2.0 * length - s;
  return point_at_arc_length(obstacle.track, s);
}

std::vector<sensor::CylinderObstacle> obstacle_circles(
    const std::vector<DynamicObstacle>& obstacles, double t) {
  std::vector<sensor::CylinderObstacle> circles;
  circles.reserve(obstacles.size());
  for (const DynamicObstacle& o : obstacles) {
    circles.push_back({obstacle_position(o, t), o.radius_m, o.height_m});
  }
  return circles;
}

std::vector<DynamicObstacle> scatter_obstacles(
    const std::vector<FlightPlan>& plans, std::size_t count,
    double speed_m_s, Rng& rng) {
  TOFMCL_EXPECTS(!plans.empty(), "need at least one flight plan to scatter");
  std::vector<DynamicObstacle> obstacles;
  obstacles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const FlightPlan& plan =
        plans[static_cast<std::size_t>(rng.uniform_index(plans.size()))];
    // A crossing point somewhere along the flight route and the local
    // flight direction there.
    Vec2 at = plan.start.position;
    Vec2 dir{1.0, 0.0};
    if (!plan.path.empty()) {
      std::vector<Vec2> route{plan.start.position};
      for (const Waypoint& wp : plan.path) route.push_back(wp.position);
      const std::size_t seg = rng.uniform_index(route.size() - 1);
      const Vec2 a = route[seg];
      const Vec2 b = route[seg + 1];
      at = a + (b - a) * rng.uniform(0.2, 0.8);
      if ((b - a).norm() > 1e-9) dir = (b - a).normalized();
    }
    // Shuttle across the route, roughly perpendicular to the flight
    // direction (±30° of skew), through the crossing point.
    const double skew = rng.uniform(-0.5, 0.5);
    const Vec2 across =
        Vec2{-dir.y, dir.x}.rotated(skew) *
        (rng.bernoulli(0.5) ? 1.0 : -1.0);
    const double half = rng.uniform(0.5, 1.0);
    DynamicObstacle o;
    o.track = {at - across * half, at + across * half};
    o.speed_m_s = speed_m_s;
    o.phase_s = rng.uniform(0.0, 4.0 * half / std::max(speed_m_s, 1e-6));
    obstacles.push_back(std::move(o));
  }
  return obstacles;
}

DynamicObstacle pace_obstacle(const FlightPlan& plan, double lead_m,
                              double speed_m_s) {
  TOFMCL_EXPECTS(lead_m >= 0.0, "pacing lead must be non-negative");
  TOFMCL_EXPECTS(speed_m_s > 0.0, "pacing speed must be positive");
  DynamicObstacle o;
  o.track.push_back(plan.start.position);
  for (const Waypoint& wp : plan.path) o.track.push_back(wp.position);
  o.speed_m_s = speed_m_s;
  // phase_s · speed = initial arc length: clamp the requested lead to the
  // track so a short route still yields a valid in-track start.
  const double length = track_length(o.track);
  o.phase_s = std::min(lead_m, length) / speed_m_s;
  return o;
}

std::vector<DynamicObstacle> scatter_obstacles_seeded(
    const std::vector<FlightPlan>& plans, std::size_t count,
    double speed_m_s, std::uint64_t data_seed) {
  // One SplitMix64 finalization of a golden-ratio combination (the same
  // mix the campaign engine uses for all derived seeds), over a stream
  // tag that keeps obstacle draws off the flight/noise stream.
  const std::uint64_t tag = 0xD15EA5E0ULL + count;
  Rng rng(SplitMix64(data_seed + 0x9E3779B97F4A7C15ULL * (tag + 1)).next());
  return scatter_obstacles(plans, count, speed_m_s, rng);
}

}  // namespace tofmcl::sim
