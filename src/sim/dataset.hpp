#pragma once
/// \file dataset.hpp
/// \brief Recorded flight sequences: odometry, ground truth, ToF frames.
///
/// The paper evaluates on a recorded dataset of 6 flights containing "ToF
/// measurements from two sensors, internal state estimation based on the
/// FlowDeck's optical flow and ground truth pose" (Section IV-A). This is
/// the exact same triple, with the simulator truth standing in for the
/// Vicon track. Sequences can be saved/loaded so experiments replay
/// identical data across configurations.

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "sensor/tof_sensor.hpp"

namespace tofmcl::sim {

/// A timestamped pose sample.
struct StateSample {
  double t = 0.0;
  Pose2 pose{};
};

/// One recorded flight.
struct Sequence {
  std::string name;
  /// On-board state estimate (EKF output, drifts). Note: lives in the
  /// odometry frame, NOT the map frame — consumers must use relative
  /// motion only, exactly like the real system.
  std::vector<StateSample> odometry;
  /// Vicon-equivalent ground truth in the map frame, sampled at the same
  /// instants as `odometry`.
  std::vector<StateSample> ground_truth;
  /// Multizone ToF frames from all sensors, time-ordered.
  std::vector<sensor::TofFrame> frames;
  double duration_s = 0.0;
  /// Smallest wall clearance of the true trajectory (collision check).
  double min_clearance_m = 0.0;
};

/// Linear/angular interpolation of a timestamped pose track at time t
/// (clamped to the track's span). The track must be non-empty and sorted.
Pose2 interpolate_pose(const std::vector<StateSample>& track, double t);

/// Text serialization. Throws IoError on failure.
void save_sequence(const Sequence& seq, std::ostream& os);
void save_sequence(const Sequence& seq, const std::filesystem::path& path);
Sequence load_sequence(std::istream& is);
Sequence load_sequence(const std::filesystem::path& path);

}  // namespace tofmcl::sim
