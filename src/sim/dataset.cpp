#include "sim/dataset.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/angles.hpp"
#include "common/error.hpp"

namespace tofmcl::sim {

Pose2 interpolate_pose(const std::vector<StateSample>& track, double t) {
  TOFMCL_EXPECTS(!track.empty(), "cannot interpolate an empty track");
  if (t <= track.front().t) return track.front().pose;
  if (t >= track.back().t) return track.back().pose;
  const auto it = std::lower_bound(
      track.begin(), track.end(), t,
      [](const StateSample& s, double time) { return s.t < time; });
  const StateSample& hi = *it;
  const StateSample& lo = *(it - 1);
  const double span = hi.t - lo.t;
  const double alpha = span > 0.0 ? (t - lo.t) / span : 0.0;
  Pose2 out;
  out.position = lo.pose.position +
                 (hi.pose.position - lo.pose.position) * alpha;
  out.yaw = slerp_angle(lo.pose.yaw, hi.pose.yaw, alpha);
  return out;
}

namespace {

constexpr char kMagic[] = "tofmcl-seq";

void write_track(std::ostream& os, const char* tag,
                 const std::vector<StateSample>& track) {
  os << tag << ' ' << track.size() << '\n';
  for (const StateSample& s : track) {
    os << s.t << ' ' << s.pose.x() << ' ' << s.pose.y() << ' ' << s.pose.yaw
       << '\n';
  }
}

std::vector<StateSample> read_track(std::istream& is, const char* tag) {
  std::string word;
  std::size_t n = 0;
  is >> word >> n;
  if (!is || word != tag) {
    throw IoError(std::string("expected track tag '") + tag + "'");
  }
  std::vector<StateSample> track(n);
  for (StateSample& s : track) {
    is >> s.t >> s.pose.position.x >> s.pose.position.y >> s.pose.yaw;
  }
  if (!is) throw IoError(std::string("truncated track '") + tag + "'");
  return track;
}

}  // namespace

void save_sequence(const Sequence& seq, std::ostream& os) {
  // 17 significant digits round-trip IEEE doubles exactly.
  const auto old_precision = os.precision(17);
  os << kMagic << " 1\n";
  os << "name " << (seq.name.empty() ? "unnamed" : seq.name) << '\n';
  os << "duration " << seq.duration_s << '\n';
  os << "min_clearance " << seq.min_clearance_m << '\n';
  write_track(os, "odometry", seq.odometry);
  write_track(os, "truth", seq.ground_truth);
  os << "frames " << seq.frames.size() << '\n';
  for (const sensor::TofFrame& f : seq.frames) {
    os << f.timestamp_s << ' ' << f.sensor_id << ' '
       << (f.mode == sensor::ZoneMode::k8x8 ? 8 : 4);
    for (const sensor::ZoneMeasurement& z : f.zones) {
      os << ' ' << z.distance_m << ' ' << static_cast<int>(z.status);
    }
    os << '\n';
  }
  os.precision(old_precision);
  if (!os) throw IoError("failed writing sequence");
}

void save_sequence(const Sequence& seq, const std::filesystem::path& path) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) throw IoError("cannot open sequence file: " + path.string());
  save_sequence(seq, out);
}

Sequence load_sequence(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (!is || magic != kMagic) throw IoError("not a tofmcl-seq file");
  if (version != 1) throw IoError("unsupported sequence version");

  Sequence seq;
  std::string word;
  is >> word >> seq.name;
  if (!is || word != "name") throw IoError("malformed sequence name");
  is >> word >> seq.duration_s;
  if (!is || word != "duration") throw IoError("malformed duration");
  is >> word >> seq.min_clearance_m;
  if (!is || word != "min_clearance") throw IoError("malformed clearance");

  seq.odometry = read_track(is, "odometry");
  seq.ground_truth = read_track(is, "truth");

  std::size_t n_frames = 0;
  is >> word >> n_frames;
  if (!is || word != "frames") throw IoError("malformed frame count");
  seq.frames.resize(n_frames);
  for (sensor::TofFrame& f : seq.frames) {
    int side = 0;
    is >> f.timestamp_s >> f.sensor_id >> side;
    if (side != 8 && side != 4) throw IoError("invalid zone matrix side");
    f.mode = side == 8 ? sensor::ZoneMode::k8x8 : sensor::ZoneMode::k4x4;
    f.zones.resize(static_cast<std::size_t>(side * side));
    for (sensor::ZoneMeasurement& z : f.zones) {
      int status = 0;
      is >> z.distance_m >> status;
      if (status < 0 || status > 2) throw IoError("invalid zone status");
      z.status = static_cast<sensor::ZoneStatus>(status);
    }
  }
  if (!is) throw IoError("truncated sequence frames");
  return seq;
}

Sequence load_sequence(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open sequence file: " + path.string());
  return load_sequence(in);
}

}  // namespace tofmcl::sim
