#include "sim/maze.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "map/rasterize.hpp"

namespace tofmcl::sim {

map::World drone_maze() {
  map::World w;
  // Outer boundary.
  w.add_rectangle({{0.0, 0.0}, {4.0, 4.0}});
  // Interior walls (see tests for the connectivity they are meant to give):
  // three long verticals with passages at alternating ends plus stubs that
  // create dead ends and one loop. The layout is deliberately asymmetric
  // under 180° rotation (F has no rotated counterpart, D/E images are
  // disjoint) so that global localization is resolvable — like the paper's
  // physical maze, which is structured but not self-similar.
  w.add_segment({1.0, 0.0}, {1.0, 2.8});    // A: left corridor wall
  w.add_segment({2.0, 1.2}, {2.0, 4.0});    // B: center wall, gap at bottom
  w.add_segment({3.0, 0.0}, {3.0, 2.6});    // C: right wall, gap at top
  w.add_segment({1.0, 2.8}, {1.5, 2.8});    // D: stub off A
  w.add_segment({2.0, 1.2}, {2.45, 1.2});   // E: stub off B
  w.add_segment({2.4, 2.0}, {3.0, 2.0});    // F: mid-height shelf on C

  // Small wall-mounted pillars (like the boxes in the paper's physical
  // maze, Fig 5): they give every corridor a range fingerprint inside the
  // 1.5 m EDT truncation radius, which is what makes global localization
  // resolvable in otherwise featureless straights. All pillars keep
  // ≥ 0.35 m clearance to the standard flight paths.
  const auto pillar = [&w](double x0, double y0) {
    w.add_rectangle({{x0, y0}, {x0 + 0.15, y0 + 0.15}});
  };
  pillar(0.00, 1.55);  // left corridor, on the outer west wall
  pillar(1.20, 3.85);  // top corridor, on the north wall
  pillar(1.85, 0.00);  // bottom corridor, south wall (left of B's gap)
  pillar(3.85, 1.90);  // right corridor, east wall
  pillar(3.85, 0.75);  // right corridor, second feature (long straight)
  pillar(3.30, 3.85);  // top-right chamber, north wall — its 180° image
                       // falls in the (featureless) bottom-left corridor,
                       // so it disambiguates the flip hypothesis
  return w;
}

map::World artificial_maze(Rng& rng, double size) {
  TOFMCL_EXPECTS(size > 1.0, "maze size must exceed 1 m");
  map::World w;
  w.add_rectangle({{0.0, 0.0}, {size, size}});

  constexpr double kDoorWidth = 0.6;
  constexpr double kMinChamber = 1.0;

  // Recursive division: split a chamber with a wall leaving one door.
  struct Chamber {
    Aabb box;
  };
  std::vector<Chamber> stack{{Aabb{{0.0, 0.0}, {size, size}}}};
  while (!stack.empty()) {
    const Chamber chamber = stack.back();
    stack.pop_back();
    const double width = chamber.box.width();
    const double height = chamber.box.height();
    if (std::max(width, height) < 2.0 * kMinChamber) continue;

    // Split across the longer dimension.
    const bool vertical_wall = width >= height;
    const double span = vertical_wall ? width : height;
    const double split_offset =
        rng.uniform(kMinChamber, span - kMinChamber);
    const double door_span = vertical_wall ? height : width;
    const double door_pos = rng.uniform(0.0, door_span - kDoorWidth);

    if (vertical_wall) {
      const double x = chamber.box.min.x + split_offset;
      const double y0 = chamber.box.min.y;
      const double y1 = chamber.box.max.y;
      // Wall with a door gap [door_pos, door_pos + kDoorWidth].
      if (door_pos > 1e-9) {
        w.add_segment({x, y0}, {x, y0 + door_pos});
      }
      if (y0 + door_pos + kDoorWidth < y1 - 1e-9) {
        w.add_segment({x, y0 + door_pos + kDoorWidth}, {x, y1});
      }
      stack.push_back({Aabb{chamber.box.min, {x, y1}}});
      stack.push_back({Aabb{{x, y0}, chamber.box.max}});
    } else {
      const double y = chamber.box.min.y + split_offset;
      const double x0 = chamber.box.min.x;
      const double x1 = chamber.box.max.x;
      if (door_pos > 1e-9) {
        w.add_segment({x0, y}, {x0 + door_pos, y});
      }
      if (x0 + door_pos + kDoorWidth < x1 - 1e-9) {
        w.add_segment({x0 + door_pos + kDoorWidth, y}, {x1, y});
      }
      stack.push_back({Aabb{chamber.box.min, {x1, y}}});
      stack.push_back({Aabb{{x0, y}, chamber.box.max}});
    }
  }
  return w;
}

EvaluationEnvironment evaluation_environment(std::uint64_t seed) {
  EvaluationEnvironment env;

  // Region 0: the real drone maze at the origin.
  env.world.add_world(drone_maze(), {0.0, 0.0});
  env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});

  // Three artificial mazes, each 2.25 m × 2.25 m (5.0625 m²), to the right
  // of the drone maze with 0.5 m of unmapped space between regions:
  // 16 + 3·5.0625 = 31.19 m² ≈ the paper's 31.2 m².
  constexpr double kSide = 2.25;
  const Vec2 offsets[] = {{4.5, 0.0}, {7.25, 0.0}, {4.5, 2.75}};
  Rng rng(seed);
  for (const Vec2& offset : offsets) {
    Rng maze_rng = rng.fork();
    env.world.add_world(artificial_maze(maze_rng, kSide), offset);
    env.maze_regions.push_back(
        {offset, offset + Vec2{kSide, kSide}});
  }

  for (const Aabb& region : env.maze_regions) {
    env.structured_area_m2 += region.area();
  }
  return env;
}

map::OccupancyGrid rasterize_environment(const EvaluationEnvironment& env,
                                         double resolution,
                                         double map_error_sigma,
                                         std::uint64_t map_seed) {
  TOFMCL_EXPECTS(resolution > 0.0, "resolution must be positive");
  constexpr double kMargin = 0.1;
  constexpr double kWallThickness = 0.05;

  map::World source = env.world;
  if (map_error_sigma > 0.0) {
    Rng rng(map_seed);
    source = env.world.perturbed(rng, map_error_sigma);
  }

  // Grid extents come from the *unperturbed* environment so the map frame
  // (and grid size) is independent of the measurement-error draw.
  const Aabb bounds = env.world.bounds();
  const Vec2 origin{bounds.min.x - kMargin, bounds.min.y - kMargin};
  const int width = static_cast<int>(
      std::ceil((bounds.width() + 2.0 * kMargin) / resolution));
  const int height = static_cast<int>(
      std::ceil((bounds.height() + 2.0 * kMargin) / resolution));
  map::OccupancyGrid grid(width, height, resolution, origin,
                          map::CellState::kUnknown);
  for (const map::Segment& s : source.segments()) {
    map::rasterize_segment(grid, s, kWallThickness);
  }

  // Mark the interiors of the structured regions as Free (leaving walls
  // Occupied and solid-region interiors Unknown — see
  // EvaluationEnvironment::solid_regions).
  for (int y = 0; y < grid.height(); ++y) {
    for (int x = 0; x < grid.width(); ++x) {
      const map::CellIndex c{x, y};
      if (grid.at(c) != map::CellState::kUnknown) continue;
      const Vec2 center = grid.cell_center(c);
      const bool solid =
          std::any_of(env.solid_regions.begin(), env.solid_regions.end(),
                      [&](const Aabb& region) {
                        return region.contains(center);
                      });
      if (solid) continue;
      for (const Aabb& region : env.maze_regions) {
        if (region.contains(center)) {
          grid.set(c, map::CellState::kFree);
          break;
        }
      }
    }
  }
  return grid;
}

}  // namespace tofmcl::sim
