#pragma once
/// \file controller.hpp
/// \brief Waypoint-following velocity controller for flight sequences.
///
/// Generates the velocity commands that fly the drone through a list of
/// waypoints, mimicking the scripted evaluation flights of the paper. Yaw
/// can track the direction of travel (the natural mode for forward/rear
/// sensing) or sweep continuously (stress-tests the observation gating on
/// dθ).

#include <vector>

#include "common/geometry.hpp"
#include "sim/drone.hpp"

namespace tofmcl::sim {

struct Waypoint {
  Vec2 position{};
  double speed = 0.4;  ///< Cruise speed toward this waypoint (m/s).
};

enum class YawMode {
  kFaceTravel,  ///< Turn to face the direction of motion.
  kHold,        ///< Keep the initial yaw.
  kSweep,       ///< Rotate continuously at sweep_rate.
};

struct ControllerConfig {
  double waypoint_tolerance_m = 0.15;  ///< Advance when this close.
  double approach_distance_m = 0.35;   ///< Start decelerating here.
  double yaw_gain = 2.0;               ///< P-gain on yaw error (1/s).
  YawMode yaw_mode = YawMode::kFaceTravel;
  double sweep_rate_rad_s = 0.6;
};

/// P-controller on position with speed scheduling and yaw shaping.
class WaypointController {
 public:
  WaypointController(std::vector<Waypoint> path, const ControllerConfig& config);

  /// Command for the current true pose; advances the active waypoint when
  /// reached. Returns a zero command once the path is complete.
  VelocityCommand command(const Pose2& pose);

  bool done() const { return index_ >= path_.size(); }
  std::size_t active_waypoint() const { return index_; }
  const std::vector<Waypoint>& path() const { return path_; }

 private:
  std::vector<Waypoint> path_;
  ControllerConfig config_;
  std::size_t index_ = 0;
};

}  // namespace tofmcl::sim
