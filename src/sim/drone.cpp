#include "sim/drone.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tofmcl::sim {

Drone::Drone(const DroneConfig& config, const Pose2& start)
    : config_(config), pose_(start) {
  TOFMCL_EXPECTS(config_.velocity_tau_s > 0.0 && config_.yaw_rate_tau_s > 0.0,
                 "response time constants must be positive");
}

void Drone::step(const VelocityCommand& command, double dt) {
  TOFMCL_EXPECTS(dt > 0.0, "time step must be positive");

  // Saturate the command like the firmware's limiter would.
  Vec2 v_cmd = command.velocity_body;
  const double speed = v_cmd.norm();
  if (speed > config_.max_speed_m_s) {
    v_cmd = v_cmd * (config_.max_speed_m_s / speed);
  }
  const double w_cmd =
      std::clamp(command.yaw_rate, -config_.max_yaw_rate, config_.max_yaw_rate);

  // First-order tracking (exact discretization of ẋ = (u - x)/τ).
  const double av = 1.0 - std::exp(-dt / config_.velocity_tau_s);
  const double aw = 1.0 - std::exp(-dt / config_.yaw_rate_tau_s);
  velocity_body_ += (v_cmd - velocity_body_) * av;
  yaw_rate_ += (w_cmd - yaw_rate_) * aw;

  // Integrate the pose with the (new) true velocities.
  const Vec2 v_world = velocity_body_.rotated(pose_.yaw);
  pose_.position += v_world * dt;
  pose_.yaw = wrap_pi(pose_.yaw + yaw_rate_ * dt);
}

}  // namespace tofmcl::sim
