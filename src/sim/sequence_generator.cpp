#include "sim/sequence_generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tofmcl::sim {

SequenceGeneratorConfig default_generator_config() {
  SequenceGeneratorConfig cfg;
  cfg.front_tof.sensor_id = 0;
  cfg.front_tof.mount = Pose2{0.02, 0.0, 0.0};
  cfg.rear_tof.sensor_id = 1;
  cfg.rear_tof.mount = Pose2{-0.02, 0.0, kPi};
  cfg.front_tof.flight_height_m = cfg.drone.flight_height_m;
  cfg.rear_tof.flight_height_m = cfg.drone.flight_height_m;
  return cfg;
}

std::vector<FlightPlan> standard_flight_plans() {
  std::vector<FlightPlan> plans;

  // Corridor landmarks of drone_maze(): left corridor x=0.5, middle
  // corridor x=1.5, the D-gap at (1.75, 2.85), the E-gap at (2.8, 1.2),
  // the C-top crossing near (3.3, 3.3).
  {
    FlightPlan p;
    p.name = "seq01_left_loop";
    p.start = {0.5, 0.6, kPi / 2.0};
    p.path = {{{0.5, 3.4}, 0.4}, {{1.5, 3.45}, 0.35}, {{1.75, 2.85}, 0.3},
              {{1.5, 2.2}, 0.35}, {{1.5, 0.6}, 0.4}, {{1.5, 2.2}, 0.35},
              {{1.75, 2.85}, 0.3}, {{1.5, 3.45}, 0.3}, {{0.5, 3.4}, 0.35},
              {{0.5, 0.6}, 0.4}};
    plans.push_back(std::move(p));
  }
  {
    FlightPlan p;
    p.name = "seq02_grand_tour";
    p.start = {1.5, 0.6, 0.0};
    // The E-gap (x ≈ 2.8, y = 1.2) and the F-gap (x ≈ 2.2, y = 2.0) are
    // crossed on straight vertical legs so waypoint corner-cutting cannot
    // clip the stub walls.
    p.path = {{{2.4, 0.6}, 0.4}, {{2.8, 0.95}, 0.3}, {{2.8, 1.4}, 0.3},
              {{2.2, 1.7}, 0.3}, {{2.2, 2.6}, 0.3}, {{2.5, 3.3}, 0.35},
              {{3.3, 3.3}, 0.35}, {{3.5, 2.5}, 0.35}, {{3.5, 0.6}, 0.4},
              {{3.5, 2.5}, 0.35}, {{3.3, 3.3}, 0.35}, {{2.5, 3.3}, 0.35},
              {{2.2, 2.6}, 0.3}, {{2.2, 1.7}, 0.3}, {{2.8, 1.4}, 0.3},
              {{2.8, 0.95}, 0.3}, {{2.4, 0.7}, 0.35}, {{1.5, 0.6}, 0.4}};
    plans.push_back(std::move(p));
  }
  {
    FlightPlan p;
    p.name = "seq03_reverse_tour";
    p.start = {3.5, 0.6, kPi / 2.0};
    p.path = {{{3.5, 2.5}, 0.45}, {{3.3, 3.3}, 0.35}, {{2.5, 3.3}, 0.4},
              {{2.2, 2.6}, 0.3}, {{2.2, 1.7}, 0.3}, {{2.8, 1.4}, 0.3},
              {{2.8, 0.95}, 0.3}, {{2.4, 0.7}, 0.35}, {{1.5, 0.6}, 0.45},
              {{2.4, 0.7}, 0.35}, {{2.8, 0.95}, 0.3}, {{2.8, 1.4}, 0.3},
              {{2.2, 1.7}, 0.3}, {{2.2, 2.6}, 0.3}, {{2.5, 3.3}, 0.35},
              {{3.3, 3.3}, 0.35}, {{3.5, 2.5}, 0.4}, {{3.5, 0.6}, 0.45}};
    plans.push_back(std::move(p));
  }
  {
    FlightPlan p;
    p.name = "seq04_middle_shuttle";
    p.start = {1.5, 2.4, -kPi / 2.0};
    p.path = {{{1.5, 0.7}, 0.5}, {{2.4, 0.6}, 0.5}, {{1.3, 0.6}, 0.5},
              {{1.5, 2.4}, 0.5}, {{1.5, 0.7}, 0.5}, {{2.4, 0.6}, 0.5},
              {{1.3, 0.6}, 0.5}, {{1.5, 2.4}, 0.5}};
    plans.push_back(std::move(p));
  }
  {
    FlightPlan p;
    p.name = "seq05_right_pocket";
    p.start = {3.5, 0.6, kPi / 2.0};
    p.path = {{{3.5, 3.4}, 0.4}, {{2.6, 3.4}, 0.3}, {{2.2, 2.6}, 0.3},
              {{2.2, 1.7}, 0.3}, {{2.8, 1.4}, 0.25}, {{2.8, 0.95}, 0.25},
              {{2.4, 0.7}, 0.35}, {{1.5, 0.7}, 0.4}, {{2.4, 0.7}, 0.35},
              {{2.8, 0.95}, 0.25}, {{2.8, 1.4}, 0.25}, {{2.2, 1.7}, 0.3},
              {{2.2, 2.6}, 0.3}, {{2.6, 3.4}, 0.3}, {{3.5, 3.4}, 0.35},
              {{3.5, 0.6}, 0.4}};
    plans.push_back(std::move(p));
  }
  {
    FlightPlan p;
    p.name = "seq06_slow_scan";
    p.start = {0.5, 0.6, 0.0};
    p.path = {{{0.5, 2.0}, 0.25}, {{0.5, 3.4}, 0.25}, {{1.5, 3.45}, 0.25},
              {{1.75, 2.85}, 0.25}, {{1.6, 2.3}, 0.25}, {{1.75, 2.85}, 0.25},
              {{1.5, 3.45}, 0.25}, {{0.5, 3.4}, 0.25}, {{0.5, 0.6}, 0.25}};
    p.controller.yaw_mode = YawMode::kSweep;
    p.controller.sweep_rate_rad_s = 0.6;
    plans.push_back(std::move(p));
  }
  return plans;
}

Sequence generate_sequence(const map::World& world, const FlightPlan& plan,
                           const SequenceGeneratorConfig& config, Rng& rng) {
  TOFMCL_EXPECTS(config.sim_dt_s > 0.0, "simulation step must be positive");
  TOFMCL_EXPECTS(config.odom_rate_hz > 0.0 && config.tof_rate_hz > 0.0,
                 "sample rates must be positive");

  Drone drone(config.drone, plan.start);
  WaypointController controller(plan.path, plan.controller);
  estimation::Gyro gyro(config.gyro, rng);
  estimation::FlowSensor flow(config.flow, rng);
  // The odometry frame starts at its own origin — only relative motion is
  // meaningful, as on the real platform.
  estimation::Ekf ekf(config.ekf, Pose2{});
  const sensor::MultizoneToF front(config.front_tof);
  const sensor::MultizoneToF rear(config.rear_tof);

  Sequence seq;
  seq.name = plan.name;
  seq.min_clearance_m = world.clearance(drone.pose().position);

  const double odom_period = 1.0 / config.odom_rate_hz;
  const double tof_period = 1.0 / config.tof_rate_hz;
  double next_odom_t = 0.0;
  double next_tof_t = tof_period / 2.0;  // first frame after some motion

  double t = 0.0;
  while (!controller.done() && t < config.timeout_s) {
    const VelocityCommand cmd = controller.command(drone.pose());
    drone.step(cmd, config.sim_dt_s);
    t += config.sim_dt_s;

    const double gyro_meas = gyro.measure(drone.yaw_rate(), config.sim_dt_s,
                                          rng);
    ekf.predict(gyro_meas, config.sim_dt_s);
    const estimation::FlowMeasurement flow_meas =
        flow.measure(drone.velocity_body(), rng);
    if (flow_meas.valid) ekf.update_flow(flow_meas.velocity_body);

    seq.min_clearance_m =
        std::min(seq.min_clearance_m, world.clearance(drone.pose().position));

    if (t + 1e-9 >= next_odom_t) {
      seq.odometry.push_back({t, ekf.pose()});
      seq.ground_truth.push_back({t, drone.pose()});
      next_odom_t += odom_period;
    }
    if (t + 1e-9 >= next_tof_t) {
      const std::vector<sensor::CylinderObstacle> circles =
          obstacle_circles(config.obstacles, t);
      seq.frames.push_back(front.measure(world, circles, drone.pose(), t,
                                         rng));
      seq.frames.push_back(rear.measure(world, circles, drone.pose(), t,
                                        rng));
      next_tof_t += tof_period;
    }
  }
  seq.duration_s = t;
  return seq;
}

}  // namespace tofmcl::sim
