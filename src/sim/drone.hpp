#pragma once
/// \file drone.hpp
/// \brief Planar kinematic model of the nano-UAV.
///
/// The Crazyflie's inner control loops track velocity commands well below
/// the dynamics that matter for localization, so the simulator models the
/// platform as a first-order velocity-tracking system at fixed flight
/// height: commanded body velocity and yaw rate are approached with small
/// time constants, and the pose integrates the true velocities. This is
/// the "truth" side of the simulation; noisy proprioception on top of it
/// lives in estimation/.

#include "common/angles.hpp"
#include "common/geometry.hpp"

namespace tofmcl::sim {

/// Velocity command in the body frame.
struct VelocityCommand {
  Vec2 velocity_body{};     ///< m/s
  double yaw_rate = 0.0;    ///< rad/s
};

struct DroneConfig {
  double velocity_tau_s = 0.25;   ///< First-order velocity response.
  double yaw_rate_tau_s = 0.12;   ///< First-order yaw-rate response.
  double max_speed_m_s = 1.0;     ///< Command saturation.
  double max_yaw_rate = 2.5;      ///< rad/s saturation.
  double flight_height_m = 0.5;
};

/// Ground-truth drone state propagated by the simulator.
class Drone {
 public:
  explicit Drone(const DroneConfig& config = {}, const Pose2& start = {});

  /// Advance the true state by dt toward the commanded velocities.
  void step(const VelocityCommand& command, double dt);

  const Pose2& pose() const { return pose_; }
  /// True body-frame velocity (what the flow sensor observes).
  Vec2 velocity_body() const { return velocity_body_; }
  /// True yaw rate (what the gyro observes).
  double yaw_rate() const { return yaw_rate_; }
  double flight_height() const { return config_.flight_height_m; }

 private:
  DroneConfig config_;
  Pose2 pose_;
  Vec2 velocity_body_{};
  double yaw_rate_ = 0.0;
};

}  // namespace tofmcl::sim
