#include "sim/controller.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tofmcl::sim {

WaypointController::WaypointController(std::vector<Waypoint> path,
                                       const ControllerConfig& config)
    : path_(std::move(path)), config_(config) {
  TOFMCL_EXPECTS(!path_.empty(), "path must contain at least one waypoint");
  for (const Waypoint& w : path_) {
    TOFMCL_EXPECTS(w.speed > 0.0, "waypoint speed must be positive");
  }
}

VelocityCommand WaypointController::command(const Pose2& pose) {
  // Advance over any waypoints already reached (handles dense lists).
  while (index_ < path_.size() &&
         (path_[index_].position - pose.position).norm() <
             config_.waypoint_tolerance_m) {
    ++index_;
  }
  if (index_ >= path_.size()) return {};

  const Waypoint& target = path_[index_];
  const Vec2 to_target = target.position - pose.position;
  const double distance = to_target.norm();

  // Speed schedule: cruise, then ramp down linearly inside the approach
  // radius (but keep a floor so the drone always reaches the waypoint).
  double speed = target.speed;
  if (distance < config_.approach_distance_m) {
    speed = std::max(0.1, target.speed * distance /
                              config_.approach_distance_m);
  }
  const Vec2 v_world = to_target * (speed / std::max(distance, 1e-9));

  VelocityCommand cmd;
  cmd.velocity_body = v_world.rotated(-pose.yaw);

  switch (config_.yaw_mode) {
    case YawMode::kFaceTravel: {
      const double desired = std::atan2(v_world.y, v_world.x);
      cmd.yaw_rate = config_.yaw_gain * angle_diff(desired, pose.yaw);
      break;
    }
    case YawMode::kHold:
      cmd.yaw_rate = 0.0;
      break;
    case YawMode::kSweep:
      cmd.yaw_rate = config_.sweep_rate_rad_s;
      break;
  }
  return cmd;
}

}  // namespace tofmcl::sim
