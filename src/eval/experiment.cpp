#include "eval/experiment.hpp"

#include <atomic>
#include <mutex>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace tofmcl::eval {

const char* to_string(Variant v) {
  switch (v) {
    case Variant::kFp32:
      return "fp32";
    case Variant::kFp32_1Tof:
      return "fp32_1tof";
    case Variant::kFp32Qm:
      return "fp32qm";
    case Variant::kFp16Qm:
      return "fp16qm";
  }
  return "unknown";
}

core::Precision precision_of(Variant v) {
  switch (v) {
    case Variant::kFp32:
    case Variant::kFp32_1Tof:
      return core::Precision::kFp32;
    case Variant::kFp32Qm:
      return core::Precision::kFp32Qm;
    case Variant::kFp16Qm:
      return core::Precision::kFp16Qm;
  }
  return core::Precision::kFp32;
}

bool uses_rear_sensor(Variant v) { return v != Variant::kFp32_1Tof; }

std::vector<ErrorSample> replay_sequence(const sim::Sequence& sequence,
                                         const map::OccupancyGrid& grid,
                                         const core::LocalizerConfig& config,
                                         bool use_rear_sensor,
                                         core::Executor& executor) {
  TOFMCL_EXPECTS(!sequence.odometry.empty(), "sequence has no odometry");
  core::Localizer localizer(grid, config, executor);
  localizer.on_odometry(sequence.odometry.front().pose);
  localizer.start_global();

  std::vector<ErrorSample> errors;
  std::size_t frame_idx = 0;
  std::vector<sensor::TofFrame> pending;
  for (const sim::StateSample& odom : sequence.odometry) {
    localizer.on_odometry(odom.pose);
    // Deliver all frames captured up to this odometry instant, grouped by
    // capture timestamp (front + rear share one).
    while (frame_idx < sequence.frames.size() &&
           sequence.frames[frame_idx].timestamp_s <= odom.t) {
      const double stamp = sequence.frames[frame_idx].timestamp_s;
      pending.clear();
      while (frame_idx < sequence.frames.size() &&
             sequence.frames[frame_idx].timestamp_s == stamp) {
        const sensor::TofFrame& frame = sequence.frames[frame_idx];
        if (use_rear_sensor || frame.sensor_id == 0) {
          pending.push_back(frame);
        }
        ++frame_idx;
      }
      if (localizer.on_frames(pending) && localizer.estimate().valid) {
        const Pose2 truth = sim::interpolate_pose(sequence.ground_truth, stamp);
        const core::PoseEstimate& est = localizer.estimate();
        errors.push_back(
            {stamp, (est.pose.position - truth.position).norm(),
             angle_dist(est.pose.yaw, truth.yaw)});
      }
    }
  }
  return errors;
}

SweepResult run_accuracy_sweep(const SweepConfig& config) {
  TOFMCL_EXPECTS(config.sequences >= 1 && config.sequences <= 6,
                 "sweep supports 1..6 standard sequences");
  TOFMCL_EXPECTS(config.seeds_per_sequence >= 1, "need at least one seed");

  // Shared environment and localization map.
  const sim::EvaluationEnvironment env = sim::evaluation_environment();
  const map::OccupancyGrid grid =
      sim::rasterize_environment(env, 0.05, config.map_error_sigma);

  // Pre-generate all datasets (cheap relative to the replays).
  const auto plans = sim::standard_flight_plans();
  const auto generator_config = sim::default_generator_config();
  struct Dataset {
    std::size_t sequence;
    std::uint64_t seed;
    sim::Sequence data;
  };
  std::vector<Dataset> datasets;
  double horizon = 0.0;
  {
    Rng seed_rng(config.master_seed);
    for (std::size_t s = 0; s < config.sequences; ++s) {
      for (std::size_t rep = 0; rep < config.seeds_per_sequence; ++rep) {
        const std::uint64_t seed = seed_rng.next();
        Rng rng(seed);
        Dataset ds{s, seed,
                   sim::generate_sequence(env.world, plans[s],
                                          generator_config, rng)};
        horizon = std::max(horizon, ds.data.duration_s);
        datasets.push_back(std::move(ds));
      }
    }
  }

  // Enumerate runs.
  struct Job {
    const Dataset* dataset;
    Variant variant;
    std::size_t particles;
  };
  std::vector<Job> jobs;
  for (const Dataset& ds : datasets) {
    for (const Variant variant : config.variants) {
      for (const std::size_t n : config.particle_counts) {
        jobs.push_back({&ds, variant, n});
      }
    }
  }

  SweepResult result;
  result.horizon_s = horizon;
  result.runs.resize(jobs.size());

  ThreadPool pool(config.threads);
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const Job& job = jobs[i];
    core::LocalizerConfig loc;
    loc.precision = precision_of(job.variant);
    loc.mcl = config.mcl;
    loc.mcl.num_particles = job.particles;
    // Filter seed derived from the data seed so repetitions differ in both
    // data noise and filter randomness, yet stay reproducible.
    loc.mcl.seed = job.dataset->seed ^ 0x9E3779B97F4A7C15ULL ^
                   (job.particles * 2654435761ULL) ^
                   static_cast<std::uint64_t>(job.variant);
    core::SerialExecutor executor;
    const auto errors =
        replay_sequence(job.dataset->data, grid, loc,
                        uses_rear_sensor(job.variant), executor);
    RunResult& out = result.runs[i];
    out.variant = job.variant;
    out.particles = job.particles;
    out.sequence = job.dataset->sequence;
    out.seed = job.dataset->seed;
    out.metrics = evaluate_run(errors);
  });
  pool.wait_idle();
  return result;
}

std::vector<CellSummary> summarize(const SweepConfig& config,
                                   const SweepResult& result) {
  std::vector<CellSummary> cells;
  for (const Variant variant : config.variants) {
    for (const std::size_t n : config.particle_counts) {
      CellSummary cell;
      cell.variant = variant;
      cell.particles = n;
      RunningStats ate;
      RunningStats conv_time;
      std::size_t successes = 0;
      for (const RunResult& run : result.runs) {
        if (run.variant != variant || run.particles != n) continue;
        ++cell.runs;
        if (run.metrics.success) ++successes;
        if (run.metrics.converged) {
          ate.add(run.metrics.ate_m);
          conv_time.add(run.metrics.convergence_time_s);
        }
      }
      if (cell.runs > 0) {
        cell.success_rate =
            static_cast<double>(successes) / static_cast<double>(cell.runs);
      }
      cell.mean_ate_m = ate.mean();
      cell.mean_convergence_s = conv_time.mean();
      cells.push_back(cell);
    }
  }
  return cells;
}

ConvergenceCurve cell_convergence_curve(const SweepResult& result,
                                        Variant variant,
                                        std::size_t particles,
                                        std::size_t bins) {
  std::vector<RunMetrics> metrics;
  for (const RunResult& run : result.runs) {
    if (run.variant == variant && run.particles == particles) {
      metrics.push_back(run.metrics);
    }
  }
  return convergence_curve(metrics, std::max(result.horizon_s, 1.0), bins);
}

}  // namespace tofmcl::eval
