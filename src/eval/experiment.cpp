#include "eval/experiment.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"
#include "eval/campaign.hpp"

namespace tofmcl::eval {

const char* to_string(Variant v) {
  switch (v) {
    case Variant::kFp32:
      return "fp32";
    case Variant::kFp32_1Tof:
      return "fp32_1tof";
    case Variant::kFp32Qm:
      return "fp32qm";
    case Variant::kFp16Qm:
      return "fp16qm";
  }
  return "unknown";
}

core::Precision precision_of(Variant v) {
  switch (v) {
    case Variant::kFp32:
    case Variant::kFp32_1Tof:
      return core::Precision::kFp32;
    case Variant::kFp32Qm:
      return core::Precision::kFp32Qm;
    case Variant::kFp16Qm:
      return core::Precision::kFp16Qm;
  }
  return core::Precision::kFp32;
}

bool uses_rear_sensor(Variant v) { return v != Variant::kFp32_1Tof; }

std::vector<ErrorSample> replay_sequence(const sim::Sequence& sequence,
                                         const map::OccupancyGrid& grid,
                                         const core::LocalizerConfig& config,
                                         bool use_rear_sensor,
                                         core::Executor& executor) {
  TOFMCL_EXPECTS(!sequence.odometry.empty(), "sequence has no odometry");
  core::Localizer localizer(grid, config, executor);
  localizer.on_odometry(sequence.odometry.front().pose);
  localizer.start_global();
  CampaignRunResult scratch;
  replay_leg(localizer, sequence, 0.0, use_rear_sensor, scratch);
  return std::move(scratch.errors);
}

// The sweep is a thin adapter over the campaign engine: the variant list
// is not a cross product (fp32_1tof pairs the fp32 precision with the
// rear sensor disabled), so it is expressed as an explicit run battery
// via Campaign::set_runs, with the historical seed chain preserved so
// sweep results are unchanged by the rewire. Maps/EDTs/LUTs and datasets
// are built once by the campaign and shared across all variants and
// particle counts.
SweepResult run_accuracy_sweep(const SweepConfig& config) {
  TOFMCL_EXPECTS(config.sequences >= 1 && config.sequences <= 6,
                 "sweep supports 1..6 standard sequences");
  TOFMCL_EXPECTS(config.seeds_per_sequence >= 1, "need at least one seed");

  CampaignSpec spec;
  spec.worlds.clear();
  for (std::size_t s = 0; s < config.sequences; ++s) {
    spec.worlds.push_back({CampaignWorld::kLargeMaze, s});
  }
  spec.seeds_per_cell = config.seeds_per_sequence;
  spec.mcl = config.mcl;
  spec.map_error_sigma = config.map_error_sigma;
  spec.master_seed = config.master_seed;
  Campaign campaign(std::move(spec));

  // Explicit battery: dataset-major (sequence, repetition), then variant,
  // then particle count — the legacy job order, with the legacy seeds.
  std::vector<RunSpec> runs;
  std::vector<Variant> run_variant;
  Rng seed_rng(config.master_seed);
  for (std::size_t s = 0; s < config.sequences; ++s) {
    for (std::size_t rep = 0; rep < config.seeds_per_sequence; ++rep) {
      const std::uint64_t seed = seed_rng.next();
      for (const Variant variant : config.variants) {
        for (const std::size_t n : config.particle_counts) {
          RunSpec run;
          run.world_index = s;
          run.sensing_index = 0;
          run.seed_index = rep;
          run.precision = precision_of(variant);
          run.num_particles = n;
          run.use_rear_sensor = uses_rear_sensor(variant);
          run.data_seed = seed;
          // Filter seed derived from the data seed so repetitions differ
          // in both data noise and filter randomness, yet stay
          // reproducible.
          run.mcl_seed = seed ^ 0x9E3779B97F4A7C15ULL ^
                         (n * 2654435761ULL) ^
                         static_cast<std::uint64_t>(variant);
          runs.push_back(run);
          run_variant.push_back(variant);
        }
      }
    }
  }
  campaign.set_runs(std::move(runs));

  CampaignOptions options;
  options.batched = config.batched_runs;
  options.threads = config.threads;
  const CampaignResult campaign_result = campaign.run(options);

  SweepResult result;
  result.horizon_s = campaign_result.horizon_s;
  result.runs.resize(campaign_result.runs.size());
  for (std::size_t i = 0; i < campaign_result.runs.size(); ++i) {
    const CampaignRunResult& run = campaign_result.runs[i];
    RunResult& out = result.runs[i];
    out.variant = run_variant[i];
    out.particles = run.spec.num_particles;
    out.sequence = run.spec.world_index;
    out.seed = run.spec.data_seed;
    out.metrics = run.metrics;
  }
  return result;
}

std::vector<CellSummary> summarize(const SweepConfig& config,
                                   const SweepResult& result) {
  std::vector<CellSummary> cells;
  for (const Variant variant : config.variants) {
    for (const std::size_t n : config.particle_counts) {
      CellSummary cell;
      cell.variant = variant;
      cell.particles = n;
      RunningStats ate;
      RunningStats conv_time;
      std::size_t successes = 0;
      for (const RunResult& run : result.runs) {
        if (run.variant != variant || run.particles != n) continue;
        ++cell.runs;
        if (run.metrics.success) ++successes;
        if (run.metrics.converged) {
          ate.add(run.metrics.ate_m);
          conv_time.add(run.metrics.convergence_time_s);
        }
      }
      if (cell.runs > 0) {
        cell.success_rate =
            static_cast<double>(successes) / static_cast<double>(cell.runs);
      }
      cell.mean_ate_m = ate.mean();
      cell.mean_convergence_s = conv_time.mean();
      cells.push_back(cell);
    }
  }
  return cells;
}

ConvergenceCurve cell_convergence_curve(const SweepResult& result,
                                        Variant variant,
                                        std::size_t particles,
                                        std::size_t bins) {
  std::vector<RunMetrics> metrics;
  for (const RunResult& run : result.runs) {
    if (run.variant == variant && run.particles == particles) {
      metrics.push_back(run.metrics);
    }
  }
  return convergence_curve(metrics, std::max(result.horizon_s, 1.0), bins);
}

}  // namespace tofmcl::eval
