#include "eval/campaign.hpp"
// TOFMCL_LINT_ALLOW_FILE(wall-clock): campaign wall-time reporting
// (runtime breakdown per phase); results depend only on seeded RNG.

#include <algorithm>
#include <bit>
#include <chrono>
#include <set>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/dynamic_obstacles.hpp"
#include "sim/worldgen.hpp"

namespace tofmcl::eval {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Builds the environment + flight-plan table for one world identity.
std::pair<sim::EvaluationEnvironment, std::vector<sim::FlightPlan>>
build_world(CampaignWorld kind, std::uint64_t seed, std::size_t laps) {
  switch (kind) {
    case CampaignWorld::kSmallMaze: {
      TOFMCL_EXPECTS(laps == 1, "maze worlds have no patrol plans");
      sim::EvaluationEnvironment env;
      env.world = sim::drone_maze();
      env.maze_regions.push_back({{0.0, 0.0}, {4.0, 4.0}});
      env.structured_area_m2 = sim::drone_maze_area();
      return {std::move(env), sim::standard_flight_plans()};
    }
    case CampaignWorld::kLargeMaze:
      TOFMCL_EXPECTS(laps == 1, "maze worlds have no patrol plans");
      return {sim::evaluation_environment(seed),
              sim::standard_flight_plans()};
    case CampaignWorld::kOffice:
    case CampaignWorld::kWarehouse:
    case CampaignWorld::kLoopCorridor: {
      sim::WorldGenConfig config;
      config.seed = seed;
      config.tour_laps = laps;
      const sim::GeneratedWorldKind gen_kind =
          kind == CampaignWorld::kOffice
              ? sim::GeneratedWorldKind::kOffice
              : (kind == CampaignWorld::kWarehouse
                     ? sim::GeneratedWorldKind::kWarehouse
                     : sim::GeneratedWorldKind::kLoopCorridor);
      sim::GeneratedWorld world = sim::generate_world(gen_kind, config);
      return {std::move(world.env), std::move(world.plans)};
    }
  }
  TOFMCL_EXPECTS(false, "unknown campaign world kind");
  return {};
}

}  // namespace

const char* to_string(CampaignWorld world) {
  switch (world) {
    case CampaignWorld::kSmallMaze:
      return "small_maze";
    case CampaignWorld::kLargeMaze:
      return "large_maze";
    case CampaignWorld::kOffice:
      return "office";
    case CampaignWorld::kWarehouse:
      return "warehouse";
    case CampaignWorld::kLoopCorridor:
      return "loop_corridor";
  }
  return "unknown";
}

const char* to_string(InitSpec::Mode mode) {
  switch (mode) {
    case InitSpec::Mode::kGlobal:
      return "global";
    case InitSpec::Mode::kTracking:
      return "tracking";
    case InitSpec::Mode::kKidnapped:
      return "kidnapped";
  }
  return "unknown";
}

std::uint64_t campaign_mix(std::uint64_t a, std::uint64_t b) {
  // One SplitMix64 finalization of a golden-ratio combination: a pure
  // function of (a, b) with good avalanche, so per-run seeds depend only
  // on the matrix coordinates, never on scheduling.
  SplitMix64 sm(a + 0x9E3779B97F4A7C15ULL * (b + 1));
  return sm.next();
}

std::vector<RunSpec> expand_runs(const CampaignSpec& spec) {
  TOFMCL_EXPECTS(!spec.worlds.empty(), "campaign needs at least one world");
  TOFMCL_EXPECTS(!spec.inits.empty(), "campaign needs at least one init");
  TOFMCL_EXPECTS(!spec.precisions.empty(),
                 "campaign needs at least one precision");
  TOFMCL_EXPECTS(!spec.sensing.empty(),
                 "campaign needs at least one sensing spec");
  TOFMCL_EXPECTS(spec.seeds_per_cell >= 1, "need at least one seed");
  std::vector<std::size_t> particle_counts = spec.particle_counts;
  if (particle_counts.empty()) {
    particle_counts.push_back(spec.mcl.num_particles);
  }
  // An empty observation axis expands as one pass with observation_index
  // 0; execute_run then leaves the mcl mixture settings untouched.
  const std::size_t observation_entries =
      spec.observation.empty() ? 1 : spec.observation.size();

  std::vector<RunSpec> runs;
  runs.reserve(spec.worlds.size() * spec.inits.size() *
               spec.precisions.size() * spec.sensing.size() *
               observation_entries * spec.seeds_per_cell *
               particle_counts.size());
  for (std::size_t wi = 0; wi < spec.worlds.size(); ++wi) {
    for (std::size_t ii = 0; ii < spec.inits.size(); ++ii) {
      for (std::size_t pi = 0; pi < spec.precisions.size(); ++pi) {
        for (std::size_t si = 0; si < spec.sensing.size(); ++si) {
          for (std::size_t oi = 0; oi < observation_entries; ++oi) {
            for (std::size_t ri = 0; ri < spec.seeds_per_cell; ++ri) {
              // Seeds are a pure function of the PRE-AXIS coordinates:
              // observation entries deliberately share data and filter
              // seeds so the axis compares mechanisms, not RNG draws.
              const std::uint64_t data_seed =
                  campaign_mix(campaign_mix(spec.master_seed, wi), ri);
              for (const std::size_t n : particle_counts) {
                RunSpec run;
                run.world_index = wi;
                run.sensing_index = si;
                run.observation_index = oi;
                run.seed_index = ri;
                run.init = spec.inits[ii];
                run.precision = spec.precisions[pi];
                run.num_particles = n;
                run.use_rear_sensor = spec.sensing[si].use_rear_sensor;
                run.data_seed = data_seed;
                run.mcl_seed = campaign_mix(
                    campaign_mix(
                        campaign_mix(campaign_mix(data_seed, ii),
                                     static_cast<std::uint64_t>(
                                         spec.precisions[pi])),
                        si),
                    n);
                runs.push_back(run);
              }
            }
          }
        }
      }
    }
  }
  return runs;
}

bool Campaign::DatasetKey::operator<(const DatasetKey& other) const {
  return std::tie(world_index, data_seed, zone_mode, rate_bits,
                  interference_bits, obstacle_count, obstacle_speed_bits,
                  kidnap_plan) <
         std::tie(other.world_index, other.data_seed, other.zone_mode,
                  other.rate_bits, other.interference_bits,
                  other.obstacle_count, other.obstacle_speed_bits,
                  other.kidnap_plan);
}

Campaign::DatasetKey Campaign::dataset_key(const RunSpec& run,
                                           const SensingSpec& sensing) {
  DatasetKey key;
  key.world_index = run.world_index;
  key.data_seed = run.data_seed;
  key.zone_mode = static_cast<std::uint8_t>(sensing.zone_mode);
  key.rate_bits = std::bit_cast<std::uint64_t>(sensing.tof_rate_hz);
  key.interference_bits =
      std::bit_cast<std::uint64_t>(sensing.p_interference);
  key.obstacle_count = sensing.obstacle_count;
  // A static world renders identically whatever the (unused) obstacle
  // speed says — normalize it out so such specs share one dataset, like
  // use_rear_sensor above.
  key.obstacle_speed_bits =
      sensing.obstacle_count == 0
          ? 0
          : std::bit_cast<std::uint64_t>(sensing.obstacle_speed_m_s);
  if (run.init.mode == InitSpec::Mode::kKidnapped) {
    key.kidnap_plan = run.init.kidnap_plan;
  }
  return key;
}

Campaign::WorldKey Campaign::world_key(const WorldSpec& ws) {
  // A pristine world is one identity whatever its (unused) mutation seed
  // says — normalize it out so kNone specs share their build.
  const bool stale = ws.mutation_level != sim::MutationLevel::kNone;
  return WorldKey{ws.world, ws.world_seed, ws.tour_laps,
                  static_cast<std::uint8_t>(ws.mutation_level),
                  stale ? ws.mutation_seed : 0};
}

Campaign::Campaign(CampaignSpec spec)
    : spec_(std::move(spec)), runs_(expand_runs(spec_)) {}

void Campaign::set_runs(std::vector<RunSpec> runs) {
  for (const RunSpec& run : runs) {
    TOFMCL_EXPECTS(run.world_index < spec_.worlds.size(),
                   "run references an unknown world index");
    TOFMCL_EXPECTS(run.sensing_index < spec_.sensing.size(),
                   "run references an unknown sensing index");
    TOFMCL_EXPECTS(
        run.observation_index == 0 ||
            run.observation_index < spec_.observation.size(),
        "run references an unknown observation index");
  }
  runs_ = std::move(runs);
}

sim::SequenceGeneratorConfig Campaign::generator_for(
    const SensingSpec& s) const {
  sim::SequenceGeneratorConfig gen = sim::default_generator_config();
  gen.front_tof.mode = s.zone_mode;
  gen.rear_tof.mode = s.zone_mode;
  gen.tof_rate_hz = s.tof_rate_hz;
  gen.front_tof.p_interference = s.p_interference;
  gen.rear_tof.p_interference = s.p_interference;
  return gen;
}

void Campaign::prepare_shared(const CampaignOptions& options) {
  // One pass over the run list: group the precisions each world IDENTITY
  // (kind, seed) needs — grids/EDTs/LUTs depend on the environment only,
  // so all plans over one world share one build.
  std::map<WorldKey, std::set<core::Precision>> needed;
  for (const RunSpec& run : runs_) {
    const WorldSpec& ws = spec_.worlds[run.world_index];
    TOFMCL_EXPECTS(ws.timeout_s > 0.0, "world timeout must be positive");
    needed[world_key(ws)].insert(run.precision);
  }
  for (const auto& [key, precision_set] : needed) {
    const std::vector<core::Precision> precisions(precision_set.begin(),
                                                  precision_set.end());
    if (const auto it = worlds_.find(key); it != worlds_.end()) {
      // Already built (an earlier run() call); extend the map resources
      // from the cached grid if a new precision needs a representation
      // the previous build skipped.
      const bool has_all =
          std::all_of(precisions.begin(), precisions.end(),
                      [&](core::Precision p) {
                        return p == core::Precision::kFp32
                                   ? it->second.maps->float_map.has_value()
                                   : it->second.maps->quantized_map
                                         .has_value();
                      });
      if (!has_all) {
        it->second.maps =
            core::build_map_resources(it->second.grid, spec_.mcl, precisions);
      }
      continue;
    }
    auto [env, plans] = build_world(key.kind, key.seed, key.laps);
    // The localization map is ALWAYS rasterized from the pristine
    // environment; staleness mutates only what the drone flies through
    // and senses below.
    map::OccupancyGrid grid = sim::rasterize_environment(
        env, spec_.map_resolution, spec_.map_error_sigma);
    auto maps = core::build_map_resources(grid, spec_.mcl, precisions);
    World world{std::move(env), std::move(grid), std::move(maps),
                std::move(plans), std::nullopt};
    if (key.mutation_level !=
        static_cast<std::uint8_t>(sim::MutationLevel::kNone)) {
      sim::MutationConfig mc;
      mc.level = static_cast<sim::MutationLevel>(key.mutation_level);
      world.stale_env =
          sim::mutate_world(world.env, world.plans, mc, key.mutation_seed);
    }
    worlds_.emplace(key, std::move(world));
  }

  // Plan indices can only be validated against each world's own table.
  for (const RunSpec& run : runs_) {
    const WorldSpec& ws = spec_.worlds[run.world_index];
    const World& world = worlds_.at(world_key(ws));
    TOFMCL_EXPECTS(ws.plan < world.plans.size(),
                   "flight plan index out of range");
    TOFMCL_EXPECTS(run.init.mode != InitSpec::Mode::kKidnapped ||
                       run.init.kidnap_plan < world.plans.size(),
                   "kidnap plan index out of range");
  }

  // Datasets: one generation per unique (world, generation params, seed,
  // kidnap chain); every init/precision/particle-count variation replays
  // the same recorded flight. Generation is deterministic per key (its
  // own Rng from data_seed), so it can fan out over the pool. Results
  // land in a local buffer and are committed to the cache only after
  // every generation succeeded — a throwing generation must not leave
  // empty datasets behind for a later run() to trip over.
  std::vector<std::pair<DatasetKey, const RunSpec*>> missing;
  std::set<DatasetKey> pending;
  for (const RunSpec& run : runs_) {
    const DatasetKey key = dataset_key(run, spec_.sensing[run.sensing_index]);
    if (datasets_.contains(key) || !pending.insert(key).second) continue;
    missing.emplace_back(key, &run);
  }
  std::vector<Dataset> generated(missing.size());
  const auto generate = [&](std::size_t i) {
    const auto& [key, run] = missing[i];
    const SensingSpec& sensing = spec_.sensing[run->sensing_index];
    sim::SequenceGeneratorConfig gen = generator_for(sensing);
    const WorldSpec& ws = spec_.worlds[run->world_index];
    // Patrol missions outlive the generator's historical 180 s abort cap;
    // the world carries its own flight budget.
    gen.timeout_s = ws.timeout_s;
    const World& world = worlds_.at(world_key(ws));
    if (sensing.obstacle_count > 0) {
      gen.obstacles = sim::scatter_obstacles_seeded(
          world.plans, sensing.obstacle_count, sensing.obstacle_speed_m_s,
          run->data_seed);
    }
    Rng rng(run->data_seed);
    Dataset& ds = generated[i];
    // Stale-map runs fly and sense the mutated world; the localizer's map
    // (world.grid / world.maps, above) stays pristine.
    ds.legs.push_back(sim::generate_sequence(world.flight_world(),
                                             world.plans[ws.plan], gen, rng));
    if (key.kidnap_plan) {
      // The second leg starts elsewhere; its odometry stream is
      // self-consistent but unrelated to leg 1's end pose — a teleport.
      ds.legs.push_back(sim::generate_sequence(
          world.flight_world(), world.plans[*key.kidnap_plan], gen, rng));
    }
  };
  if (options.batched && missing.size() > 1) {
    ThreadPool pool(options.threads);
    for (std::size_t i = 0; i < missing.size(); ++i) {
      pool.submit([&generate, i] { generate(i); });
    }
    pool.wait_idle();
  } else {
    for (std::size_t i = 0; i < missing.size(); ++i) generate(i);
  }
  for (std::size_t i = 0; i < missing.size(); ++i) {
    datasets_.emplace(missing[i].first, std::move(generated[i]));
  }

  horizon_s_ = 0.0;
  for (const auto& [key, ds] : datasets_) {
    double total = 0.0;
    for (const sim::Sequence& leg : ds.legs) total += leg.duration_s;
    horizon_s_ = std::max(horizon_s_, total);
  }
}

void replay_leg(core::Localizer& loc, const sim::Sequence& seq,
                double t_offset, bool use_rear_sensor,
                CampaignRunResult& out) {
  std::size_t frame_idx = 0;
  std::vector<sensor::TofFrame> pending;
  for (const sim::StateSample& odom : seq.odometry) {
    loc.on_odometry(odom.pose);
    while (frame_idx < seq.frames.size() &&
           seq.frames[frame_idx].timestamp_s <= odom.t) {
      const double stamp = seq.frames[frame_idx].timestamp_s;
      pending.clear();
      while (frame_idx < seq.frames.size() &&
             seq.frames[frame_idx].timestamp_s == stamp) {
        const sensor::TofFrame& frame = seq.frames[frame_idx];
        if (use_rear_sensor || frame.sensor_id == 0) {
          pending.push_back(frame);
        }
        ++frame_idx;
      }
      if (loc.on_frames(pending) && loc.estimate().valid) {
        out.particle_beam_ops +=
            static_cast<std::uint64_t>(loc.workload().particles) *
            static_cast<std::uint64_t>(loc.workload().beams);
        const Pose2 truth = sim::interpolate_pose(seq.ground_truth, stamp);
        const core::PoseEstimate& est = loc.estimate();
        out.errors.push_back(
            {t_offset + stamp,
             (est.pose.position - truth.position).norm(),
             angle_dist(est.pose.yaw, truth.yaw)});
      }
    }
  }
}

std::shared_ptr<const core::ScoringContext> Campaign::context_for(
    const std::shared_ptr<const core::MapResources>& maps,
    const core::LocalizerConfig& config) const {
  const std::pair<const void*, std::string> key(
      maps.get(), core::scoring_fingerprint(config));
  std::lock_guard<std::mutex> lock(ctx_mutex_);
  const auto it = ctx_cache_.find(key);
  if (it != ctx_cache_.end()) return it->second;
  // Cheap under the lock: the expensive map resources are prebuilt, the
  // context only bundles them with the resolved config and a new arena.
  auto ctx = core::build_scoring_context(maps, config);
  return ctx_cache_.emplace(key, std::move(ctx)).first->second;
}

CampaignRunResult Campaign::execute_run(const RunSpec& run,
                                        core::Executor& executor) const {
  const WorldSpec& ws = spec_.worlds[run.world_index];
  const World& world = worlds_.at(world_key(ws));
  const SensingSpec& sensing = spec_.sensing[run.sensing_index];
  const Dataset& dataset =
      datasets_.at(dataset_key(run, sensing));
  const sim::SequenceGeneratorConfig gen = generator_for(sensing);

  core::LocalizerConfig lc;
  lc.precision = run.precision;
  lc.mcl = spec_.mcl;
  lc.mcl.num_particles = run.num_particles;
  lc.mcl.seed = run.mcl_seed;
  // The observation-model axis is a replay-time property: it reconfigures
  // the filter, never the dataset. An empty axis leaves the spec's mcl
  // mixture/gating settings untouched.
  if (!spec_.observation.empty()) {
    const ObservationSpec& obs = spec_.observation[run.observation_index];
    lc.mcl.z_short = obs.z_short;
    lc.mcl.lambda_short = obs.lambda_short;
    lc.mcl.enable_novelty_gating = obs.novelty_gating;
    lc.mcl.novelty_margin_m = obs.novelty_margin_m;
    lc.mcl.novelty_min_concentration = obs.novelty_min_concentration;
  }
  lc.sensors = {gen.front_tof, gen.rear_tof};

  core::SessionKnobs knobs;
  knobs.seed = lc.mcl.seed;
  knobs.num_particles = lc.mcl.num_particles;
  core::Localizer loc(context_for(world.maps, lc), knobs, executor);
  const sim::Sequence& leg1 = dataset.legs.front();
  TOFMCL_EXPECTS(!leg1.odometry.empty(), "dataset leg has no odometry");
  loc.on_odometry(leg1.odometry.front().pose);
  if (run.init.mode == InitSpec::Mode::kTracking) {
    loc.start_at(leg1.ground_truth.front().pose, run.init.sigma_xy,
                 run.init.sigma_yaw);
  } else {
    loc.start_global();
  }

  CampaignRunResult out;
  out.spec = run;
  replay_leg(loc, leg1, 0.0, run.use_rear_sensor, out);
  if (dataset.legs.size() > 1) {
    out.kidnap_time_s = leg1.duration_s;
    replay_leg(loc, dataset.legs[1], leg1.duration_s, run.use_rear_sensor,
               out);
  }
  out.updates_run = loc.updates_run();
  out.dropped_frames = loc.dropped_frames();
  out.metrics = evaluate_run(out.errors);
  if (!out.errors.empty()) {
    out.final_pos_error_m = out.errors.back().pos_error;
  }
  return out;
}

std::vector<ReplaySource> Campaign::export_replay_sources(
    const CampaignOptions& options) {
  prepare_shared(options);
  std::vector<ReplaySource> out;
  std::set<DatasetKey> seen;
  for (const RunSpec& run : runs_) {
    const SensingSpec& sensing = spec_.sensing[run.sensing_index];
    const DatasetKey key = dataset_key(run, sensing);
    if (!seen.insert(key).second) continue;
    const WorldSpec& ws = spec_.worlds[run.world_index];
    const World& world = worlds_.at(world_key(ws));
    const Dataset& dataset = datasets_.at(key);
    const sim::SequenceGeneratorConfig gen = generator_for(sensing);
    ReplaySource src;
    src.map_key =
        std::string(to_string(ws.world)) + "/" + std::to_string(run.world_index);
    src.name = src.map_key + "/seed" + std::to_string(run.data_seed);
    src.world_index = run.world_index;
    src.maps = world.maps;
    src.front_tof = gen.front_tof;
    src.rear_tof = gen.rear_tof;
    src.legs = dataset.legs;
    const sim::Sequence& leg1 = dataset.legs.front();
    TOFMCL_EXPECTS(!leg1.ground_truth.empty(),
                   "dataset leg has no ground truth");
    src.start_pose = leg1.ground_truth.front().pose;
    out.push_back(std::move(src));
  }
  return out;
}

CampaignResult Campaign::run(const CampaignOptions& options) {
  const auto t_prepare = std::chrono::steady_clock::now();
  prepare_shared(options);
  const double prepare_s = seconds_since(t_prepare);

  CampaignResult result;
  result.runs.resize(runs_.size());
  result.horizon_s = horizon_s_;
  result.prepare_seconds = prepare_s;

  const auto t_execute = std::chrono::steady_clock::now();
  if (!options.batched) {
    // Reference schedule: one run at a time; the filter's chunks may
    // still fan out over a pool (the pre-campaign way to use the cores).
    if (options.pooled_filter_chunks) {
      ThreadPool pool(options.threads);
      core::ThreadPoolExecutor executor(pool);
      for (std::size_t i = 0; i < runs_.size(); ++i) {
        result.runs[i] = execute_run(runs_[i], executor);
      }
    } else {
      core::SerialExecutor executor;
      for (std::size_t i = 0; i < runs_.size(); ++i) {
        result.runs[i] = execute_run(runs_[i], executor);
      }
    }
  } else {
    // Batched: every run is a pool task writing its own result slot.
    // With pooled_filter_chunks the run's chunk phases ALSO land on the
    // same pool (nested fork-join; the pool's helping wait makes this
    // deadlock-free).
    ThreadPool pool(options.threads);
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      if (options.pooled_filter_chunks) {
        pool.submit([this, i, &result, &pool] {
          core::ThreadPoolExecutor executor(pool);
          result.runs[i] = execute_run(runs_[i], executor);
        });
      } else {
        pool.submit([this, i, &result] {
          core::SerialExecutor executor;
          result.runs[i] = execute_run(runs_[i], executor);
        });
      }
    }
    pool.wait_idle();
  }
  result.execute_seconds = seconds_since(t_execute);
  return result;
}

}  // namespace tofmcl::eval
