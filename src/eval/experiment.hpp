#pragma once
/// \file experiment.hpp
/// \brief Replay of recorded sequences through the localizer, and the
///        full accuracy sweep behind the paper's Figs 6, 7 and 8.
///
/// A sweep evaluates every (variant × particle count × sequence × seed)
/// combination the paper reports: variants fp32, fp32 1tof (front sensor
/// only), fp32qm and fp16qm over particle counts 64…16384 on the six
/// standard flight sequences with several noise seeds each.

#include <cstdint>
#include <string>
#include <vector>

#include "core/localizer.hpp"
#include "eval/metrics.hpp"
#include "map/occupancy_grid.hpp"
#include "sim/dataset.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"

namespace tofmcl::eval {

/// The paper's four evaluation configurations (Fig 6/7 legend).
enum class Variant : std::uint8_t {
  kFp32,      ///< float particles + float EDT, both sensors
  kFp32_1Tof, ///< fp32, front sensor only
  kFp32Qm,    ///< float particles + quantized EDT
  kFp16Qm,    ///< fp16 particles + quantized EDT
};
const char* to_string(Variant v);
/// Precision used by a variant's filter.
core::Precision precision_of(Variant v);
/// Whether the variant consumes the rear sensor's frames.
bool uses_rear_sensor(Variant v);

/// Replays one recorded sequence through a localizer and returns the
/// error trace at every correction step.
std::vector<ErrorSample> replay_sequence(const sim::Sequence& sequence,
                                         const map::OccupancyGrid& grid,
                                         const core::LocalizerConfig& config,
                                         bool use_rear_sensor,
                                         core::Executor& executor);

struct SweepConfig {
  std::vector<Variant> variants{Variant::kFp32, Variant::kFp32_1Tof,
                                Variant::kFp32Qm, Variant::kFp16Qm};
  std::vector<std::size_t> particle_counts{64, 256, 1024, 4096, 16384};
  /// Number of standard flight plans used (≤ 6) and seeds per plan.
  std::size_t sequences = 6;
  std::size_t seeds_per_sequence = 6;
  /// Base MCL parameters applied to every run (num_particles overridden).
  core::MclConfig mcl;
  /// Map-acquisition error (m) used when rasterizing the localization map.
  double map_error_sigma = 0.01;
  /// Worker threads for running independent replays (0 = hardware).
  std::size_t threads = 0;
  /// Run the battery as batched campaign tasks (default) or one run at a
  /// time (reference schedule; results are bit-identical either way).
  bool batched_runs = true;
  /// Master seed for the data-generation seeds.
  std::uint64_t master_seed = 2023;
};

/// One row of sweep output.
struct RunResult {
  Variant variant{};
  std::size_t particles = 0;
  std::size_t sequence = 0;
  std::uint64_t seed = 0;
  RunMetrics metrics;
};

/// Aggregate of all runs of one (variant, particle count) cell.
struct CellSummary {
  Variant variant{};
  std::size_t particles = 0;
  double mean_ate_m = 0.0;        ///< Over converged runs (paper Fig 6).
  double success_rate = 0.0;      ///< Fraction of successful runs (Fig 7).
  double mean_convergence_s = 0.0;
  std::size_t runs = 0;
};

struct SweepResult {
  std::vector<RunResult> runs;
  /// Duration of the longest sequence (for convergence curves).
  double horizon_s = 0.0;
};

/// Runs the full sweep on the campaign engine (eval/campaign.hpp): maps,
/// EDTs, likelihood LUTs and sequences are built once and shared by all
/// variants and particle counts; runs are scheduled as batched campaign
/// tasks. Deterministic for a fixed config regardless of scheduling.
SweepResult run_accuracy_sweep(const SweepConfig& config);

/// Aggregates sweep runs into per-(variant, N) cells, preserving the
/// variant/particle ordering of the config.
std::vector<CellSummary> summarize(const SweepConfig& config,
                                   const SweepResult& result);

/// Convergence curve for one (variant, N) cell of the sweep (Fig 8).
ConvergenceCurve cell_convergence_curve(const SweepResult& result,
                                        Variant variant,
                                        std::size_t particles,
                                        std::size_t bins = 60);

}  // namespace tofmcl::eval
