#pragma once
/// \file campaign.hpp
/// \brief Batched multi-run evaluation campaigns.
///
/// The paper's evaluation (Figs 6–8, the ablations, the scenario matrix)
/// is a battery of INDEPENDENT localization runs over a spec matrix
///
///     map × init mode × precision × sensing degradation × seed
///
/// Running them one at a time leaves most host cores idle: a single
/// filter's four phases parallelize, but Amdahl caps the win, while the
/// campaign itself is embarrassingly parallel. The campaign engine makes
/// the batch the first-class unit of work:
///
///  * the spec matrix is expanded into an explicit run list
///    (`Campaign::runs()`), each run carrying its own deterministic
///    data/filter seeds derived from the matrix coordinates — never from
///    scheduling order;
///  * expensive read-only state is built ONCE and shared: occupancy
///    grids, float/quantized EDTs and the likelihood LUT per map
///    (core::MapResources), and each simulated dataset per
///    (map, sensing, seed) — reused by every init/precision/particle
///    variation riding on it;
///  * runs are scheduled on a ThreadPool as run-level tasks ALONGSIDE the
///    per-filter chunking: each run may itself execute its filter chunks
///    on the same pool (CampaignOptions::pooled_filter_chunks), which the
///    pool's helping wait makes deadlock-free.
///
/// Determinism guarantee: for a fixed spec, the CampaignResult is
/// bit-identical whatever the execution policy — serial run-at-a-time,
/// batched over any thread count, with or without pooled filter chunks.
/// Run results are written to slots indexed by run order; seeds are pure
/// functions of the spec; executors only change wall-clock.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/localizer.hpp"
#include "eval/metrics.hpp"
#include "map/occupancy_grid.hpp"
#include "sim/dataset.hpp"
#include "sim/maze.hpp"
#include "sim/sequence_generator.hpp"
#include "sim/worldgen.hpp"

namespace tofmcl::eval {

/// Which evaluation world a run flies in.
enum class CampaignWorld : std::uint8_t {
  kSmallMaze,     ///< 16 m² physical drone maze only.
  kLargeMaze,     ///< 31.2 m² extended map (drone maze + artificial mazes).
  kOffice,        ///< Generated office floor plan (sim::generate_world).
  kWarehouse,     ///< Generated cluttered warehouse hall.
  kLoopCorridor,  ///< Generated ring corridor around a solid core.
};
const char* to_string(CampaignWorld world);

/// One map-dimension entry: a world plus the flight plan flown in it.
/// Maze worlds index sim::standard_flight_plans(); generated worlds index
/// their own tour plans (0 tour, 1 reverse, 2 shuttle) and use
/// `world_seed` as the procedural seed. The seed also selects the
/// artificial-maze layout of kLargeMaze, whose historical default is
/// 2023.
struct WorldSpec {
  CampaignWorld world = CampaignWorld::kLargeMaze;
  std::size_t plan = 0;  ///< Index into the world's flight-plan table.
  std::uint64_t world_seed = 2023;
  /// Dataset-generation abort limit for flights in this world. The default
  /// matches the generator's historical 180 s cap; raise it together with
  /// tour_laps for patrol missions that fly longer than that.
  double timeout_s = 180.0;
  /// Generated worlds only: plan 0 becomes an out-and-back patrol of this
  /// many laps over the tour route (WorldGenConfig::tour_laps). 1 = the
  /// classic single tour; maze worlds require 1.
  std::size_t tour_laps = 1;
  /// Staleness axis (lifelong localization): with a level other than
  /// kNone, the drone flies and senses a seeded MUTATION of the world
  /// (sim::mutate_world — moved shelving, closed doors, scattered static
  /// clutter) while the localizer keeps the PRISTINE map. kNone leaves
  /// the whole pipeline bit-identical to a spec without the axis.
  /// Composes with every world kind and with the sensing axis's dynamic
  /// obstacles.
  sim::MutationLevel mutation_level = sim::MutationLevel::kNone;
  std::uint64_t mutation_seed = 0;
};

/// One init-mode-dimension entry.
struct InitSpec {
  enum class Mode : std::uint8_t { kGlobal, kTracking, kKidnapped };
  Mode mode = Mode::kGlobal;
  /// Tracking-init cloud size.
  double sigma_xy = 0.2;
  double sigma_yaw = 0.2;
  /// Second flight plan for kidnapped runs (teleport target); the filter
  /// is NOT re-initialized between the legs — recovery must come from the
  /// Augmented-MCL injection.
  std::size_t kidnap_plan = 2;
};
const char* to_string(InitSpec::Mode mode);

/// One sensing-degradation-dimension entry. The zone mode, frame rate,
/// interference rate and dynamic-obstacle load shape the generated
/// dataset; use_rear_sensor is a replay-time property (the 1-ToF
/// ablation), so two entries differing only in it share their datasets.
struct SensingSpec {
  sensor::ZoneMode zone_mode = sensor::ZoneMode::k8x8;
  double tof_rate_hz = 15.0;
  double p_interference = 0.01;
  bool use_rear_sensor = true;
  /// Dynamic-obstacle degradation: this many people-sized cylinders
  /// patrol the flight corridors and are composited into every rendered
  /// frame, while the localization map stays static. 0 = static world.
  std::size_t obstacle_count = 0;
  double obstacle_speed_m_s = 0.8;
};

/// One observation-model-dimension entry: the beam-mixture parameters and
/// novelty gating applied at REPLAY time (datasets are untouched, so every
/// entry rides on the same generated flights — paired A/B comparisons of
/// the robustness mechanisms against identical data and filter seeds).
struct ObservationSpec {
  double z_short = 0.0;       ///< Short-return mixture weight.
  double lambda_short = 1.0;  ///< Short-return decay rate (1/m).
  bool novelty_gating = false;
  double novelty_margin_m = 0.5;
  double novelty_min_concentration = 0.85;
};

/// The campaign matrix. Every combination of the dimensions (times every
/// particle count) becomes one run.
struct CampaignSpec {
  std::vector<WorldSpec> worlds{{}};
  std::vector<InitSpec> inits{{}};
  std::vector<core::Precision> precisions{core::Precision::kFp32};
  std::vector<SensingSpec> sensing{{}};
  /// Observation-model robustness axis. EMPTY (the default) means "no
  /// axis": runs use `mcl`'s own mixture/gating settings untouched, and
  /// the expanded run list is identical to the pre-axis engine.
  std::vector<ObservationSpec> observation;
  std::size_t seeds_per_cell = 1;
  /// Particle counts swept per cell; empty means {mcl.num_particles}.
  std::vector<std::size_t> particle_counts;
  /// Base MCL parameters; num_particles and seed are overridden per run.
  core::MclConfig mcl;
  double map_resolution = 0.05;
  /// Map-acquisition error (m) used when rasterizing the localization map.
  double map_error_sigma = 0.01;
  /// Master seed; all per-run seeds derive from it and the matrix
  /// coordinates.
  std::uint64_t master_seed = 2023;
};

/// One fully-resolved run. Produced by the matrix expansion, or built by
/// hand for non-cross-product batteries (Campaign::set_runs) — the sweep
/// behind Figs 6/7 does the latter since its variant list pairs precision
/// and sensor count.
struct RunSpec {
  std::size_t world_index = 0;    ///< Into CampaignSpec::worlds.
  std::size_t sensing_index = 0;  ///< Into CampaignSpec::sensing.
  /// Into CampaignSpec::observation; 0 with an empty axis (mcl settings
  /// apply verbatim). Deliberately NOT mixed into the seed derivation:
  /// entries differing only here replay identical data with identical
  /// filter RNG — the paired-comparison design of the robustness axis.
  std::size_t observation_index = 0;
  std::size_t seed_index = 0;     ///< 0 .. seeds_per_cell-1.
  InitSpec init;
  core::Precision precision = core::Precision::kFp32;
  std::size_t num_particles = 4096;
  bool use_rear_sensor = true;
  /// Seed of the dataset this run replays. Runs with equal
  /// (world_index, generation parameters, data_seed, kidnap chain) share
  /// one generated dataset.
  std::uint64_t data_seed = 0;
  /// Seed of the run's filter RNG.
  std::uint64_t mcl_seed = 0;
};

/// Outcome of one run.
struct CampaignRunResult {
  RunSpec spec;
  RunMetrics metrics;
  /// Error trace at every correction (frame timestamps; kidnapped runs
  /// offset leg 2 by leg 1's duration so the trace is contiguous).
  std::vector<ErrorSample> errors;
  std::size_t updates_run = 0;
  std::size_t dropped_frames = 0;
  /// Σ over corrections of particles × beams — the observation-phase work.
  std::uint64_t particle_beam_ops = 0;
  /// Teleport instant of a kidnapped run (0 otherwise).
  double kidnap_time_s = 0.0;
  double final_pos_error_m = 0.0;
};

struct CampaignResult {
  std::vector<CampaignRunResult> runs;  ///< In Campaign::runs() order.
  /// Longest dataset duration (for convergence curves).
  double horizon_s = 0.0;
  /// Wall-clock split: shared-resource preparation vs run execution.
  double prepare_seconds = 0.0;
  double execute_seconds = 0.0;
};

/// How a campaign's runs are executed.
struct CampaignOptions {
  /// false: one run at a time on the calling thread (the reference
  /// schedule). true: runs become ThreadPool tasks.
  bool batched = true;
  /// Pool size for batched execution (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Run each filter's chunk phases on the shared pool too (nested
  /// fork-join) instead of serially inside its run task. Worth it only
  /// when runs are few and large; results are bit-identical either way.
  bool pooled_filter_chunks = false;
};

/// One replayable flight bundle exported for the serving layer and its
/// benches: the map's shared resources (pointer-identical across sources
/// on the same world build), the sensor deck the frames were rendered
/// with, the recorded legs and the leg-1 start pose. Produced by
/// Campaign::export_replay_sources, deduplicated by dataset in run order.
struct ReplaySource {
  /// Serving map key: sources sharing it share `maps` (and a serving
  /// layer should open their sessions on one map definition).
  std::string map_key;
  /// Unique dataset name (map key + data seed).
  std::string name;
  std::size_t world_index = 0;
  std::shared_ptr<const core::MapResources> maps;
  /// The deck the frames were rendered with — sessions must replay with
  /// the same sensor configuration.
  sensor::TofSensorConfig front_tof;
  sensor::TofSensorConfig rear_tof;
  std::vector<sim::Sequence> legs;  ///< 1 leg, or 2 for kidnap datasets.
  Pose2 start_pose{};  ///< Leg-1 ground truth at t=0 (tracking init).
};

/// A campaign: spec + expanded run list + cached shared resources.
/// run() may be called repeatedly (e.g. once serial, once batched);
/// shared resources are built on first use and reused.
class Campaign {
 public:
  explicit Campaign(CampaignSpec spec);

  const CampaignSpec& spec() const { return spec_; }
  const std::vector<RunSpec>& runs() const { return runs_; }
  /// Replaces the expanded run list with a custom battery. Index fields
  /// must reference the spec's worlds/sensing tables; seeds are taken as
  /// given (callers own their determinism story).
  void set_runs(std::vector<RunSpec> runs);

  CampaignResult run(const CampaignOptions& options = {});

  /// Builds the campaign's shared resources (worlds, maps, datasets) and
  /// exports every unique dataset as a ReplaySource — the serving layer's
  /// input format. Sequences are copied so the sources outlive the
  /// campaign; MapResources are shared by pointer. Order follows the run
  /// list (first run referencing a dataset wins).
  std::vector<ReplaySource> export_replay_sources(
      const CampaignOptions& options = {});

 private:
  struct World {
    sim::EvaluationEnvironment env;  ///< Pristine: the localizer's map.
    map::OccupancyGrid grid;
    std::shared_ptr<const core::MapResources> maps;
    /// The flight-plan table WorldSpec::plan indexes: the six standard
    /// maze flights, or a generated world's tour plans.
    std::vector<sim::FlightPlan> plans;
    /// Stale-map worlds only: the mutated environment the drone actually
    /// flies and senses. Empty at mutation level kNone, so the pristine
    /// path stays bit-identical to the pre-axis engine.
    std::optional<sim::EvaluationEnvironment> stale_env;
    /// The segment world datasets are generated against.
    const map::World& flight_world() const {
      return stale_env ? stale_env->world : env.world;
    }
  };
  /// Grids/EDTs/LUTs depend on the environment only, which is determined
  /// by (kind, procedural seed) — the flight plan matters to datasets,
  /// not maps.
  struct WorldKey {
    CampaignWorld kind;
    std::uint64_t seed;
    /// Patrol laps change the plan table (not the geometry), so they are
    /// part of the world identity. A spec mixing laps variants of one
    /// world therefore rebuilds its grid/EDT/LUT — accepted: the
    /// tour-vs-patrol battery is rare, and keying maps and plan tables
    /// separately is not worth the second cache.
    std::size_t laps;
    /// Staleness identity: two specs differing only in mutation share
    /// NOTHING here (the pristine grid/EDT/LUT rebuild is accepted — a
    /// split pristine/stale cache is not worth the collision surface;
    /// datasets are keyed by world INDEX, so they can never leak across
    /// mutation variants either).
    std::uint8_t mutation_level;
    std::uint64_t mutation_seed;
    bool operator<(const WorldKey& other) const {
      return std::tie(kind, seed, laps, mutation_level, mutation_seed) <
             std::tie(other.kind, other.seed, other.laps,
                      other.mutation_level, other.mutation_seed);
    }
  };
  struct DatasetKey {
    std::size_t world_index;
    std::uint64_t data_seed;
    std::uint8_t zone_mode;
    std::uint64_t rate_bits;
    std::uint64_t interference_bits;
    std::size_t obstacle_count;
    std::uint64_t obstacle_speed_bits;
    std::optional<std::size_t> kidnap_plan;
    bool operator<(const DatasetKey& other) const;
  };
  struct Dataset {
    std::vector<sim::Sequence> legs;  ///< 1 leg, or 2 for kidnapped runs.
  };

  static DatasetKey dataset_key(const RunSpec& run,
                                const SensingSpec& sensing);
  static WorldKey world_key(const WorldSpec& ws);
  sim::SequenceGeneratorConfig generator_for(const SensingSpec& s) const;
  void prepare_shared(const CampaignOptions& options);
  CampaignRunResult execute_run(const RunSpec& run,
                                core::Executor& executor) const;

  /// One shared ScoringContext per (map resources, scoring fingerprint):
  /// every run differing only in seed/particle count leases its particle
  /// blocks from the same arena, so a batch's sequential runs on one pool
  /// worker recycle blocks instead of reallocating. Guarded by
  /// ctx_mutex_ (execute_run is const and fans out over the pool).
  std::shared_ptr<const core::ScoringContext> context_for(
      const std::shared_ptr<const core::MapResources>& maps,
      const core::LocalizerConfig& config) const;

  CampaignSpec spec_;
  std::vector<RunSpec> runs_;
  /// Keyed by world identity, not WorldSpec index, so e.g. a six-plan
  /// sweep over the large maze builds one EDT set, not six.
  std::map<WorldKey, World> worlds_;
  std::map<DatasetKey, Dataset> datasets_;
  mutable std::mutex ctx_mutex_;
  mutable std::map<std::pair<const void*, std::string>,
                   std::shared_ptr<const core::ScoringContext>>
      ctx_cache_;
  double horizon_s_ = 0.0;
};

/// Deterministic seed derivation used by the matrix expansion: a pure
/// function of the coordinates, so scheduling can never perturb it.
std::uint64_t campaign_mix(std::uint64_t a, std::uint64_t b);

/// Expands the spec matrix into the canonical run list (worlds outermost,
/// then inits, precisions, sensing, observation entries, seeds, particle
/// counts innermost). With an empty observation axis the list — including
/// every derived seed — is identical to the pre-axis engine's.
std::vector<RunSpec> expand_runs(const CampaignSpec& spec);

/// Replays one recorded leg through an already-initialized localizer:
/// frames are grouped by capture timestamp, rear frames dropped for 1-ToF
/// runs, and an error sample recorded (timestamp offset by `t_offset`) at
/// every correction that yields a valid estimate, with observation-phase
/// work accumulated into `out.particle_beam_ops`. The single source of
/// truth for replay semantics — both the campaign engine and
/// replay_sequence() run through it.
void replay_leg(core::Localizer& localizer, const sim::Sequence& seq,
                double t_offset, bool use_rear_sensor,
                CampaignRunResult& out);

}  // namespace tofmcl::eval
