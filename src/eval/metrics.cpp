#include "eval/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace tofmcl::eval {

RunMetrics evaluate_run(const std::vector<ErrorSample>& errors,
                        const ConvergenceCriteria& criteria) {
  RunMetrics metrics;
  if (errors.empty()) return metrics;
  TOFMCL_EXPECTS(criteria.stable_steps >= 1, "stable_steps must be >= 1");

  // First instant beginning a stable in-gate window.
  std::size_t conv_idx = errors.size();
  std::size_t streak = 0;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (errors[i].pos_error <= criteria.pos_m &&
        errors[i].yaw_error <= criteria.yaw_rad) {
      ++streak;
      if (streak >= criteria.stable_steps) {
        conv_idx = i + 1 - criteria.stable_steps;
        break;
      }
    } else {
      streak = 0;
    }
  }
  if (conv_idx == errors.size()) return metrics;  // never converged

  metrics.converged = true;
  metrics.convergence_time_s = errors[conv_idx].t;

  RunningStats ate;
  double worst = 0.0;
  for (std::size_t i = conv_idx; i < errors.size(); ++i) {
    ate.add(errors[i].pos_error);
    worst = std::max(worst, errors[i].pos_error);
  }
  metrics.ate_m = ate.mean();
  metrics.max_error_after_convergence_m = worst;
  metrics.success = metrics.ate_m <= criteria.failure_ate_m;
  return metrics;
}

ConvergenceCurve convergence_curve(const std::vector<RunMetrics>& runs,
                                   double horizon_s, std::size_t bin_count) {
  TOFMCL_EXPECTS(horizon_s > 0.0, "curve horizon must be positive");
  TOFMCL_EXPECTS(bin_count > 1, "curve needs at least two bins");
  ConvergenceCurve curve;
  curve.time_s.resize(bin_count);
  curve.probability.resize(bin_count);
  const double total = static_cast<double>(runs.size());
  for (std::size_t b = 0; b < bin_count; ++b) {
    const double t = horizon_s * static_cast<double>(b) /
                     static_cast<double>(bin_count - 1);
    curve.time_s[b] = t;
    if (runs.empty()) continue;
    std::size_t converged = 0;
    for (const RunMetrics& run : runs) {
      if (run.converged && run.convergence_time_s <= t) ++converged;
    }
    curve.probability[b] = static_cast<double>(converged) / total;
  }
  return curve;
}

}  // namespace tofmcl::eval
