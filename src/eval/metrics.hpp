#pragma once
/// \file metrics.hpp
/// \brief The paper's evaluation metrics (Section IV-A).
///
/// Three accuracy metrics are reported: the success rate, the time to
/// convergence and the absolute trajectory error (ATE) after convergence.
/// Convergence occurs when the estimated pose is within (0.2 m, 36°) of
/// ground truth; a run is successful if pose tracking remains reliable
/// from convergence until the end of the sequence, i.e. the ATE does not
/// exceed 1 m.

#include <vector>

#include "common/angles.hpp"

namespace tofmcl::eval {

/// Pose-estimate error at one correction step.
struct ErrorSample {
  double t = 0.0;           ///< Sequence time (s).
  double pos_error = 0.0;   ///< Euclidean position error (m).
  double yaw_error = 0.0;   ///< Absolute yaw error (rad).
};

struct ConvergenceCriteria {
  double pos_m = 0.2;                     ///< Position gate (paper: 0.2 m).
  double yaw_rad = deg_to_rad(36.0);      ///< Yaw gate (paper: 36°).
  double failure_ate_m = 1.0;             ///< Success bound on the ATE.
  /// Convergence is declared at the first run of this many consecutive
  /// in-gate estimates. A still-global particle cloud can produce a mean
  /// that momentarily dips inside the gates; requiring a stable window
  /// keeps such flukes from starting the ATE accounting early.
  std::size_t stable_steps = 3;
};

/// Metrics of one localization run.
struct RunMetrics {
  bool converged = false;
  /// Time of first convergence (s); meaningless unless converged.
  double convergence_time_s = 0.0;
  /// Mean position error from convergence to the end of the run (m).
  double ate_m = 0.0;
  /// Largest position error after convergence (m).
  double max_error_after_convergence_m = 0.0;
  /// Converged and ATE stayed within the failure bound.
  bool success = false;
};

/// Evaluates a run's error trace against the paper's criteria. Empty
/// traces yield a non-converged result.
RunMetrics evaluate_run(const std::vector<ErrorSample>& errors,
                        const ConvergenceCriteria& criteria = {});

/// Convergence-probability curve (Fig 8): fraction of runs whose
/// convergence time is ≤ t, evaluated at `bin_count` times spanning
/// [0, horizon_s].
struct ConvergenceCurve {
  std::vector<double> time_s;
  std::vector<double> probability;
};
ConvergenceCurve convergence_curve(const std::vector<RunMetrics>& runs,
                                   double horizon_s, std::size_t bin_count);

}  // namespace tofmcl::eval
