#include "map/rasterize.hpp"

#include <algorithm>
#include <cmath>

namespace tofmcl::map {

void rasterize_segment(OccupancyGrid& grid, const Segment& segment,
                       double wall_thickness) {
  TOFMCL_EXPECTS(wall_thickness >= 0.0, "wall thickness must be >= 0");
  const double half = wall_thickness / 2.0;
  const double res = grid.resolution();

  // Visit every cell whose bounding box could touch the inflated segment,
  // then test the cell center against the exact distance. The candidate
  // window is the segment AABB grown by half thickness + one cell.
  const Vec2 lo{std::min(segment.a.x, segment.b.x) - half - res,
                std::min(segment.a.y, segment.b.y) - half - res};
  const Vec2 hi{std::max(segment.a.x, segment.b.x) + half + res,
                std::max(segment.a.y, segment.b.y) + half + res};
  const CellIndex c0 = grid.world_to_cell(lo);
  const CellIndex c1 = grid.world_to_cell(hi);

  const Vec2 e = segment.b - segment.a;
  const double len2 = e.squared_norm();

  for (int y = std::max(c0.y, 0); y <= std::min(c1.y, grid.height() - 1);
       ++y) {
    for (int x = std::max(c0.x, 0); x <= std::min(c1.x, grid.width() - 1);
         ++x) {
      const Vec2 center = grid.cell_center({x, y});
      double t = 0.0;
      if (len2 > 0.0) {
        t = std::clamp((center - segment.a).dot(e) / len2, 0.0, 1.0);
      }
      const Vec2 closest = segment.a + e * t;
      // A cell is painted when its center is within the inflated wall, or
      // when the wall passes through the cell at all (distance under half a
      // cell diagonal) so that thin walls cannot slip between centers.
      const double d = (center - closest).norm();
      if (d <= half || d <= res * 0.5 * std::numbers::sqrt2) {
        grid.set({x, y}, CellState::kOccupied);
      }
    }
  }
}

OccupancyGrid rasterize(const World& world, const RasterizeOptions& options) {
  TOFMCL_EXPECTS(options.resolution > 0.0, "resolution must be positive");
  TOFMCL_EXPECTS(!world.empty(), "cannot rasterize an empty world");

  const Aabb bounds = world.bounds();
  const Vec2 origin{bounds.min.x - options.margin,
                    bounds.min.y - options.margin};
  const int width = static_cast<int>(
      std::ceil((bounds.width() + 2.0 * options.margin) / options.resolution));
  const int height = static_cast<int>(std::ceil(
      (bounds.height() + 2.0 * options.margin) / options.resolution));

  OccupancyGrid grid(std::max(width, 1), std::max(height, 1),
                     options.resolution, origin, options.interior_fill);
  for (const Segment& s : world.segments()) {
    rasterize_segment(grid, s, options.wall_thickness);
  }
  return grid;
}

}  // namespace tofmcl::map
