#include "map/edt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tofmcl::map {

namespace {
// Larger than any achievable in-grid squared distance, yet safe to add and
// square-root without overflow.
constexpr double kFarAway = 1e18;
}  // namespace

namespace detail {

void dt_1d(const std::vector<double>& f, std::vector<double>& d) {
  const std::size_t n = f.size();
  d.assign(n, 0.0);
  if (n == 0) return;

  // Lower envelope of the parabolas y(x) = (x - j)² + f[j].
  // v[k] — abscissa of the parabola forming the k-th envelope piece,
  // z[k]..z[k+1] — the x-interval where that piece is minimal.
  std::vector<std::size_t> v(n, 0);
  std::vector<double> z(n + 1, 0.0);
  int k = 0;
  v[0] = 0;
  z[0] = -std::numeric_limits<double>::infinity();
  z[1] = std::numeric_limits<double>::infinity();

  for (std::size_t q = 1; q < n; ++q) {
    if (f[q] >= kFarAway && f[v[static_cast<std::size_t>(k)]] >= kFarAway) {
      // Both parabolas are at the sentinel height; intersection arithmetic
      // would be inf-inf. Skip: a sentinel parabola can never undercut
      // another sentinel.
      continue;
    }
    const double fq = f[q];
    const auto dq = static_cast<double>(q);
    double s;
    for (;;) {
      const std::size_t p = v[static_cast<std::size_t>(k)];
      const auto dp = static_cast<double>(p);
      // Intersection of parabolas rooted at p and q.
      s = ((fq + dq * dq) - (f[p] + dp * dp)) / (2.0 * dq - 2.0 * dp);
      if (s > z[static_cast<std::size_t>(k)]) break;
      --k;
    }
    ++k;
    v[static_cast<std::size_t>(k)] = q;
    z[static_cast<std::size_t>(k)] = s;
    z[static_cast<std::size_t>(k) + 1] =
        std::numeric_limits<double>::infinity();
  }

  k = 0;
  for (std::size_t q = 0; q < n; ++q) {
    while (z[static_cast<std::size_t>(k) + 1] < static_cast<double>(q)) ++k;
    const std::size_t p = v[static_cast<std::size_t>(k)];
    const double dx = static_cast<double>(q) - static_cast<double>(p);
    d[q] = dx * dx + f[p];
  }
}

}  // namespace detail

std::vector<double> edt_squared_cells(const OccupancyGrid& grid) {
  const auto w = static_cast<std::size_t>(grid.width());
  const auto h = static_cast<std::size_t>(grid.height());
  std::vector<double> field(w * h);

  // Seed: 0 at occupied cells, "infinity" elsewhere.
  for (int y = 0; y < grid.height(); ++y) {
    for (int x = 0; x < grid.width(); ++x) {
      field[static_cast<std::size_t>(y) * w + static_cast<std::size_t>(x)] =
          grid.is_occupied({x, y}) ? 0.0 : kFarAway;
    }
  }

  // Pass 1: transform each column.
  std::vector<double> f(h);
  std::vector<double> d;
  for (std::size_t x = 0; x < w; ++x) {
    for (std::size_t y = 0; y < h; ++y) f[y] = field[y * w + x];
    detail::dt_1d(f, d);
    for (std::size_t y = 0; y < h; ++y) field[y * w + x] = d[y];
  }

  // Pass 2: transform each row.
  std::vector<double> fr(w);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) fr[x] = field[y * w + x];
    detail::dt_1d(fr, d);
    for (std::size_t x = 0; x < w; ++x) field[y * w + x] = d[x];
  }

  return field;
}

std::vector<float> edt_meters(const OccupancyGrid& grid, double rmax) {
  TOFMCL_EXPECTS(rmax > 0.0, "EDT truncation radius must be positive");
  const std::vector<double> sq = edt_squared_cells(grid);
  std::vector<float> meters(sq.size());
  const double res = grid.resolution();
  for (std::size_t i = 0; i < sq.size(); ++i) {
    const double m = std::sqrt(sq[i]) * res;
    meters[i] = static_cast<float>(std::min(m, rmax));
  }
  return meters;
}

std::vector<double> edt_squared_cells_brute_force(const OccupancyGrid& grid) {
  std::vector<CellIndex> occupied;
  for (int y = 0; y < grid.height(); ++y) {
    for (int x = 0; x < grid.width(); ++x) {
      if (grid.is_occupied({x, y})) occupied.push_back({x, y});
    }
  }
  const auto w = static_cast<std::size_t>(grid.width());
  std::vector<double> out(
      w * static_cast<std::size_t>(grid.height()), kFarAway);
  for (int y = 0; y < grid.height(); ++y) {
    for (int x = 0; x < grid.width(); ++x) {
      double best = kFarAway;
      for (const CellIndex& o : occupied) {
        const double dx = x - o.x;
        const double dy = y - o.y;
        best = std::min(best, dx * dx + dy * dy);
      }
      out[static_cast<std::size_t>(y) * w + static_cast<std::size_t>(x)] = best;
    }
  }
  return out;
}

}  // namespace tofmcl::map
