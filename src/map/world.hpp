#pragma once
/// \file world.hpp
/// \brief Continuous line-segment world model.
///
/// The physical "drone maze" is a set of thin wooden walls. We model the
/// true environment as 2D line segments, which gives (i) exact analytic
/// raycasts for simulating the ToF sensor against ground truth, and (ii) a
/// source geometry from which the occupancy grid map is rasterized —
/// optionally from a *perturbed* copy, reproducing the paper's
/// hand-measured map inaccuracy (Section IV-A).

#include <optional>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"

namespace tofmcl::map {

/// A wall segment between two world points.
struct Segment {
  Vec2 a{};
  Vec2 b{};

  double length() const { return (b - a).norm(); }
};

/// Result of an analytic raycast.
struct RayHit {
  double distance = 0.0;     ///< Meters from the ray origin.
  Vec2 point{};              ///< World coordinates of the hit.
  std::size_t segment = 0;   ///< Index of the hit segment.
};

/// Immutable-geometry continuous world made of wall segments.
class World {
 public:
  World() = default;
  explicit World(std::vector<Segment> segments)
      : segments_(std::move(segments)) {}

  void add_segment(Vec2 a, Vec2 b) { segments_.push_back({a, b}); }
  /// Adds the four edges of an axis-aligned rectangle.
  void add_rectangle(const Aabb& box);
  /// Adds a chain of segments through the given points.
  void add_polyline(const std::vector<Vec2>& points);
  /// Appends all segments of another world, translated by `offset`.
  void add_world(const World& other, Vec2 offset);

  const std::vector<Segment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

  /// Bounding box of all segments; zero box when empty.
  Aabb bounds() const;

  /// Nearest intersection of the ray (origin, angle) with any segment
  /// within max_range meters; nullopt when nothing is hit.
  std::optional<RayHit> raycast(Vec2 origin, double angle,
                                double max_range) const;

  /// Shortest distance from a point to any segment (for collision checks
  /// in the flight simulator); +inf when the world is empty.
  double clearance(Vec2 point) const;

  /// A copy with every segment endpoint independently jittered by
  /// zero-mean Gaussian noise of the given σ (meters). Models the
  /// map-acquisition error of manual measurement.
  World perturbed(Rng& rng, double sigma) const;

 private:
  std::vector<Segment> segments_;
};

}  // namespace tofmcl::map
