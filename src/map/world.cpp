#include "map/world.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tofmcl::map {

void World::add_rectangle(const Aabb& box) {
  const Vec2 bl = box.min;
  const Vec2 br{box.max.x, box.min.y};
  const Vec2 tr = box.max;
  const Vec2 tl{box.min.x, box.max.y};
  add_segment(bl, br);
  add_segment(br, tr);
  add_segment(tr, tl);
  add_segment(tl, bl);
}

void World::add_polyline(const std::vector<Vec2>& points) {
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    add_segment(points[i], points[i + 1]);
  }
}

void World::add_world(const World& other, Vec2 offset) {
  for (const Segment& s : other.segments_) {
    add_segment(s.a + offset, s.b + offset);
  }
}

Aabb World::bounds() const {
  if (segments_.empty()) return {};
  Aabb box{segments_[0].a, segments_[0].a};
  for (const Segment& s : segments_) {
    box = box.expanded(s.a).expanded(s.b);
  }
  return box;
}

std::optional<RayHit> World::raycast(Vec2 origin, double angle,
                                     double max_range) const {
  const Vec2 dir{std::cos(angle), std::sin(angle)};
  double best_t = max_range;
  std::optional<RayHit> best;

  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    // Solve origin + t·dir = a + u·(b-a) with t ∈ [0, best_t], u ∈ [0, 1].
    const Vec2 e = s.b - s.a;
    const double denom = dir.cross(e);
    if (std::abs(denom) < 1e-12) continue;  // parallel (or degenerate)
    const Vec2 ao = s.a - origin;
    const double t = ao.cross(e) / denom;
    const double u = ao.cross(dir) / denom;
    if (t >= 0.0 && t < best_t && u >= 0.0 && u <= 1.0) {
      best_t = t;
      best = RayHit{t, origin + dir * t, i};
    }
  }
  return best;
}

double World::clearance(Vec2 point) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Segment& s : segments_) {
    const Vec2 e = s.b - s.a;
    const double len2 = e.squared_norm();
    double t = 0.0;
    if (len2 > 0.0) {
      t = std::clamp((point - s.a).dot(e) / len2, 0.0, 1.0);
    }
    const Vec2 closest = s.a + e * t;
    best = std::min(best, (point - closest).norm());
  }
  return best;
}

World World::perturbed(Rng& rng, double sigma) const {
  std::vector<Segment> out;
  out.reserve(segments_.size());
  for (const Segment& s : segments_) {
    out.push_back({{s.a.x + rng.gaussian(0.0, sigma),
                    s.a.y + rng.gaussian(0.0, sigma)},
                   {s.b.x + rng.gaussian(0.0, sigma),
                    s.b.y + rng.gaussian(0.0, sigma)}});
  }
  return World(std::move(out));
}

}  // namespace tofmcl::map
