#pragma once
/// \file occupancy_grid.hpp
/// \brief 2D occupancy grid map with three cell states.
///
/// The paper localizes in a standard occupancy grid (Moravec-style) at
/// 0.05 m resolution. A cell is Free, Occupied or Unknown — 3 states need
/// 2 bits, but "to simplify the memory access we store it as 1 byte per
/// cell" (Section III-C2); we keep the same layout so the memory model in
/// platform/memory_model.hpp matches the paper's accounting (1 B/cell for
/// occupancy + the distance value).

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/geometry.hpp"

namespace tofmcl::map {

/// Tri-state cell occupancy.
enum class CellState : std::uint8_t {
  kFree = 0,
  kOccupied = 1,
  kUnknown = 2,
};

/// Integer cell coordinates (column ix, row iy).
struct CellIndex {
  int x = 0;
  int y = 0;
  constexpr bool operator==(const CellIndex&) const = default;
};

/// Row-major 2D occupancy grid anchored in world coordinates.
///
/// World anchoring: cell (0,0) covers the square
/// [origin.x, origin.x+res) × [origin.y, origin.y+res). X grows with the
/// column index, Y with the row index.
class OccupancyGrid {
 public:
  /// Constructs a grid of `width` × `height` cells filled with `fill`.
  /// `resolution` is the cell edge length in meters (> 0).
  OccupancyGrid(int width, int height, double resolution, Vec2 origin,
                CellState fill = CellState::kUnknown);

  int width() const { return width_; }
  int height() const { return height_; }
  double resolution() const { return resolution_; }
  Vec2 origin() const { return origin_; }
  std::size_t cell_count() const { return cells_.size(); }

  /// Map extent in world coordinates.
  Aabb bounds() const {
    return {origin_,
            origin_ + Vec2{width_ * resolution_, height_ * resolution_}};
  }
  /// Total mapped area in m².
  double area() const { return bounds().area(); }

  bool in_bounds(CellIndex c) const {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
  }
  bool in_bounds(Vec2 world) const { return in_bounds(world_to_cell(world)); }

  /// Cell containing a world point (floor semantics; may be out of bounds).
  CellIndex world_to_cell(Vec2 world) const {
    return {static_cast<int>(std::floor((world.x - origin_.x) / resolution_)),
            static_cast<int>(std::floor((world.y - origin_.y) / resolution_))};
  }

  /// World coordinates of a cell's center.
  Vec2 cell_center(CellIndex c) const {
    return origin_ + Vec2{(c.x + 0.5) * resolution_, (c.y + 0.5) * resolution_};
  }

  CellState at(CellIndex c) const {
    TOFMCL_EXPECTS(in_bounds(c), "cell index out of bounds");
    return static_cast<CellState>(cells_[index_of(c)]);
  }
  void set(CellIndex c, CellState s) {
    TOFMCL_EXPECTS(in_bounds(c), "cell index out of bounds");
    cells_[index_of(c)] = static_cast<std::uint8_t>(s);
  }

  /// State at a world point; out-of-map points read as Unknown.
  CellState state_at(Vec2 world) const {
    const CellIndex c = world_to_cell(world);
    if (!in_bounds(c)) return CellState::kUnknown;
    return static_cast<CellState>(cells_[index_of(c)]);
  }

  bool is_occupied(CellIndex c) const { return at(c) == CellState::kOccupied; }
  bool is_free(CellIndex c) const { return at(c) == CellState::kFree; }

  /// Raw row-major storage (1 byte per cell, same as the on-target layout).
  const std::vector<std::uint8_t>& raw() const { return cells_; }

  std::size_t count(CellState s) const;

  /// Centers of all Free cells — the support for uniform global
  /// initialization of the particle filter.
  std::vector<Vec2> free_cell_centers() const;

  bool operator==(const OccupancyGrid&) const = default;

 private:
  std::size_t index_of(CellIndex c) const {
    return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(c.x);
  }

  int width_;
  int height_;
  double resolution_;
  Vec2 origin_;
  std::vector<std::uint8_t> cells_;
};

}  // namespace tofmcl::map
