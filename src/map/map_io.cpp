#include "map/map_io.hpp"

#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace tofmcl::map {

namespace {

constexpr char kMagic[] = "tofmcl-grid";

char to_glyph(CellState s) {
  switch (s) {
    case CellState::kFree:
      return '.';
    case CellState::kOccupied:
      return '#';
    case CellState::kUnknown:
      return '?';
  }
  return '?';
}

CellState from_glyph(char g) {
  switch (g) {
    case '.':
      return CellState::kFree;
    case '#':
      return CellState::kOccupied;
    case '?':
      return CellState::kUnknown;
    default:
      throw IoError(std::string("invalid cell glyph: '") + g + "'");
  }
}

/// Drops a trailing '\r' so grid files written on Windows (CRLF line
/// endings) parse identically to LF files.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

void write_header(const OccupancyGrid& grid, std::ostream& os, int version) {
  // max_digits10 significant digits guarantee that parsing the decimal
  // text recovers the exact double (resolution/origin round-trip
  // bit-exactly, which the world cache keys and EDT rebuilds rely on).
  const auto precision = os.precision(
      std::numeric_limits<double>::max_digits10);
  os << kMagic << ' ' << version << '\n';
  os << grid.width() << ' ' << grid.height() << ' ' << grid.resolution()
     << ' ' << grid.origin().x << ' ' << grid.origin().y << '\n';
  os.precision(precision);
}

void expand_rle_row(const std::string& line, int y, OccupancyGrid& grid) {
  int x = 0;
  std::size_t i = 0;
  while (i < line.size()) {
    long count = 1;
    if (std::isdigit(static_cast<unsigned char>(line[i]))) {
      count = 0;
      while (i < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[i]))) {
        count = count * 10 + (line[i] - '0');
        if (count > grid.width()) {
          throw IoError("grid row " + std::to_string(y) +
                        " run exceeds width");
        }
        ++i;
      }
      if (count == 0) {
        throw IoError("grid row " + std::to_string(y) + " has a zero run");
      }
      if (i == line.size()) {
        throw IoError("grid row " + std::to_string(y) +
                      " ends mid-run (count without glyph)");
      }
    }
    const CellState state = from_glyph(line[i]);
    ++i;
    if (x + count > grid.width()) {
      throw IoError("grid row " + std::to_string(y) + " has wrong width");
    }
    for (long k = 0; k < count; ++k, ++x) grid.set({x, y}, state);
  }
  if (x != grid.width()) {
    throw IoError("grid row " + std::to_string(y) + " has wrong width");
  }
}

}  // namespace

void save_grid(const OccupancyGrid& grid, std::ostream& os,
               GridFormat format) {
  const int version = format == GridFormat::kV1 ? 1 : 2;
  write_header(grid, os, version);
  for (int y = 0; y < grid.height(); ++y) {
    if (format == GridFormat::kV1) {
      std::string row(static_cast<std::size_t>(grid.width()), '?');
      for (int x = 0; x < grid.width(); ++x) {
        row[static_cast<std::size_t>(x)] = to_glyph(grid.at({x, y}));
      }
      os << row << '\n';
    } else {
      int x = 0;
      while (x < grid.width()) {
        const CellState state = grid.at({x, y});
        int run = 1;
        while (x + run < grid.width() && grid.at({x + run, y}) == state) {
          ++run;
        }
        if (run > 1) os << run;
        os << to_glyph(state);
        x += run;
      }
      os << '\n';
    }
  }
  if (!os) throw IoError("failed writing grid");
}

void save_grid(const OccupancyGrid& grid, const std::filesystem::path& path,
               GridFormat format) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) throw IoError("cannot open map file for writing: " + path.string());
  save_grid(grid, out, format);
}

OccupancyGrid load_grid(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (!is || magic != kMagic) throw IoError("not a tofmcl-grid file");
  if (version != 1 && version != 2) {
    throw IoError("unsupported grid version: " + std::to_string(version));
  }

  int width = 0;
  int height = 0;
  double resolution = 0.0;
  Vec2 origin;
  is >> width >> height >> resolution >> origin.x >> origin.y;
  if (!is || width <= 0 || height <= 0 || resolution <= 0.0) {
    throw IoError("malformed grid header");
  }

  OccupancyGrid grid(width, height, resolution, origin);
  std::string row;
  std::getline(is, row);  // consume end of header line
  for (int y = 0; y < height; ++y) {
    if (!std::getline(is, row)) throw IoError("truncated grid body");
    strip_cr(row);
    if (version == 1) {
      if (row.size() != static_cast<std::size_t>(width)) {
        throw IoError("grid row " + std::to_string(y) + " has wrong width");
      }
      for (int x = 0; x < width; ++x) {
        grid.set({x, y}, from_glyph(row[static_cast<std::size_t>(x)]));
      }
    } else {
      expand_rle_row(row, y, grid);
    }
  }
  return grid;
}

OccupancyGrid load_grid(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open map file: " + path.string());
  return load_grid(in);
}

std::string to_ascii(const OccupancyGrid& grid) {
  std::ostringstream os;
  for (int y = grid.height() - 1; y >= 0; --y) {
    for (int x = 0; x < grid.width(); ++x) {
      os << to_glyph(grid.at({x, y}));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace tofmcl::map
