#include "map/map_io.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace tofmcl::map {

namespace {

constexpr char kMagic[] = "tofmcl-grid";

char to_glyph(CellState s) {
  switch (s) {
    case CellState::kFree:
      return '.';
    case CellState::kOccupied:
      return '#';
    case CellState::kUnknown:
      return '?';
  }
  return '?';
}

CellState from_glyph(char g) {
  switch (g) {
    case '.':
      return CellState::kFree;
    case '#':
      return CellState::kOccupied;
    case '?':
      return CellState::kUnknown;
    default:
      throw IoError(std::string("invalid cell glyph: '") + g + "'");
  }
}

}  // namespace

void save_grid(const OccupancyGrid& grid, std::ostream& os) {
  os << kMagic << " 1\n";
  os << grid.width() << ' ' << grid.height() << ' ' << grid.resolution()
     << ' ' << grid.origin().x << ' ' << grid.origin().y << '\n';
  for (int y = 0; y < grid.height(); ++y) {
    std::string row(static_cast<std::size_t>(grid.width()), '?');
    for (int x = 0; x < grid.width(); ++x) {
      row[static_cast<std::size_t>(x)] = to_glyph(grid.at({x, y}));
    }
    os << row << '\n';
  }
  if (!os) throw IoError("failed writing grid");
}

void save_grid(const OccupancyGrid& grid, const std::filesystem::path& path) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) throw IoError("cannot open map file for writing: " + path.string());
  save_grid(grid, out);
}

OccupancyGrid load_grid(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (!is || magic != kMagic) throw IoError("not a tofmcl-grid file");
  if (version != 1) {
    throw IoError("unsupported grid version: " + std::to_string(version));
  }

  int width = 0;
  int height = 0;
  double resolution = 0.0;
  Vec2 origin;
  is >> width >> height >> resolution >> origin.x >> origin.y;
  if (!is || width <= 0 || height <= 0 || resolution <= 0.0) {
    throw IoError("malformed grid header");
  }

  OccupancyGrid grid(width, height, resolution, origin);
  std::string row;
  std::getline(is, row);  // consume end of header line
  for (int y = 0; y < height; ++y) {
    if (!std::getline(is, row)) throw IoError("truncated grid body");
    if (row.size() != static_cast<std::size_t>(width)) {
      throw IoError("grid row " + std::to_string(y) + " has wrong width");
    }
    for (int x = 0; x < width; ++x) {
      grid.set({x, y}, from_glyph(row[static_cast<std::size_t>(x)]));
    }
  }
  return grid;
}

OccupancyGrid load_grid(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open map file: " + path.string());
  return load_grid(in);
}

std::string to_ascii(const OccupancyGrid& grid) {
  std::ostringstream os;
  for (int y = grid.height() - 1; y >= 0; --y) {
    for (int x = 0; x < grid.width(); ++x) {
      os << to_glyph(grid.at({x, y}));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace tofmcl::map
