#include "map/snapshot_io.hpp"

#include <bit>
#include <cstring>
#include <string>

namespace tofmcl::map {

void SnapshotWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v & 0xFFu));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void SnapshotWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v & 0xFFFFu));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void SnapshotWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void SnapshotWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

void SnapshotWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void SnapshotReader::require(std::size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw IoError("snapshot truncated: need " + std::to_string(n) +
                  " bytes at offset " + std::to_string(pos_) + " of " +
                  std::to_string(bytes_.size()));
  }
}

std::uint8_t SnapshotReader::u8() {
  require(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint16_t SnapshotReader::u16() {
  const std::uint16_t lo = u8();
  const std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t SnapshotReader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t SnapshotReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

float SnapshotReader::f32() { return std::bit_cast<float>(u32()); }

double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }

}  // namespace tofmcl::map
