#pragma once
/// \file edt.hpp
/// \brief Exact Euclidean distance transform of an occupancy grid.
///
/// The observation model (paper Eq. 1) evaluates the distance from a beam's
/// end point to the nearest occupied cell. Those distances are precomputed
/// once per map with the Felzenszwalb–Huttenlocher algorithm
/// ("Distance Transforms of Sampled Functions", Theory of Computing 2012):
/// two separable 1D lower-envelope-of-parabolas passes give the exact
/// squared Euclidean distance in O(cells). Distances are reported in meters
/// and truncated at `rmax` exactly as the paper does.

#include <vector>

#include "map/occupancy_grid.hpp"

namespace tofmcl::map {

/// Exact squared distance (in cell units) from every cell center to the
/// nearest Occupied cell center. Cells in maps with no occupied cell get
/// a large sentinel (greater than any in-map squared distance).
/// Row-major, same layout as the grid.
std::vector<double> edt_squared_cells(const OccupancyGrid& grid);

/// Metric distance field: sqrt of edt_squared_cells scaled by the map
/// resolution and truncated at `rmax` (meters). This is the field the
/// paper's fp32 configuration stores — one float per cell.
std::vector<float> edt_meters(const OccupancyGrid& grid, double rmax);

/// O(n²) reference implementation used by the property tests: for every
/// cell, scan all occupied cells. Same units/semantics as
/// edt_squared_cells.
std::vector<double> edt_squared_cells_brute_force(const OccupancyGrid& grid);

namespace detail {
/// One 1D pass of the Felzenszwalb–Huttenlocher transform: given sampled
/// function values f (squared distances so far), returns
/// d[i] = min_j ( (i-j)² + f[j] ). Exposed for unit testing.
void dt_1d(const std::vector<double>& f, std::vector<double>& d);
}  // namespace detail

}  // namespace tofmcl::map
