#include "map/occupancy_grid.hpp"

#include <algorithm>

namespace tofmcl::map {

namespace {
std::size_t checked_cell_count(int width, int height) {
  TOFMCL_EXPECTS(width > 0 && height > 0, "grid dimensions must be positive");
  return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
}
}  // namespace

OccupancyGrid::OccupancyGrid(int width, int height, double resolution,
                             Vec2 origin, CellState fill)
    : width_(width),
      height_(height),
      resolution_(resolution),
      origin_(origin),
      cells_(checked_cell_count(width, height),
             static_cast<std::uint8_t>(fill)) {
  TOFMCL_EXPECTS(resolution > 0.0, "grid resolution must be positive");
}

std::size_t OccupancyGrid::count(CellState s) const {
  return static_cast<std::size_t>(
      std::count(cells_.begin(), cells_.end(), static_cast<std::uint8_t>(s)));
}

std::vector<Vec2> OccupancyGrid::free_cell_centers() const {
  std::vector<Vec2> centers;
  centers.reserve(count(CellState::kFree));
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const CellIndex c{x, y};
      if (is_free(c)) centers.push_back(cell_center(c));
    }
  }
  return centers;
}

}  // namespace tofmcl::map
