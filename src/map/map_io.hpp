#pragma once
/// \file map_io.hpp
/// \brief Plain-text serialization of occupancy grids.
///
/// Format (line oriented, '#' is a cell glyph, not a comment):
///
///     tofmcl-grid 1
///     <width> <height> <resolution> <origin_x> <origin_y>
///     <height rows of width glyphs, row 0 first: '.'=free '#'=occupied '?'=unknown>
///
/// The glyph matrix is stored bottom row first so files match the in-memory
/// row order (row 0 = smallest y).

#include <filesystem>
#include <iosfwd>

#include "map/occupancy_grid.hpp"

namespace tofmcl::map {

/// Writes the grid; throws IoError on stream failure.
void save_grid(const OccupancyGrid& grid, std::ostream& os);
void save_grid(const OccupancyGrid& grid, const std::filesystem::path& path);

/// Reads a grid; throws IoError on malformed input.
OccupancyGrid load_grid(std::istream& is);
OccupancyGrid load_grid(const std::filesystem::path& path);

/// Renders the grid as ASCII art for examples/debugging, with optional
/// pose markers ('D' ground truth, 'P' estimate). Row with largest y
/// printed first so the output is a conventional top-down view.
std::string to_ascii(const OccupancyGrid& grid);

}  // namespace tofmcl::map
