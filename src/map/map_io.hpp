#pragma once
/// \file map_io.hpp
/// \brief Plain-text serialization of occupancy grids.
///
/// Two on-disk versions share the magic and header layout:
///
///     tofmcl-grid <version>
///     <width> <height> <resolution> <origin_x> <origin_y>
///
/// Header numbers are written with max_digits10 significant digits so a
/// save→load round trip reproduces every double bit-exactly.
///
/// Version 1 body: `<height>` rows of `<width>` glyphs, row 0 (smallest y)
/// first: '.'=free '#'=occupied '?'=unknown. '#' is a cell glyph, not a
/// comment.
///
/// Version 2 body: the same rows, each run-length encoded as
/// `<count><glyph>` tokens (a bare glyph means count 1), e.g. `118.3#97.`.
/// Generated worlds are dominated by long free/unknown runs, so v2 files
/// are typically 20-50× smaller and proportionally faster to read.
///
/// load_grid() auto-detects the version and accepts both; lines may end in
/// LF or CRLF.

#include <filesystem>
#include <iosfwd>

#include "map/occupancy_grid.hpp"

namespace tofmcl::map {

/// On-disk format version selector for save_grid().
enum class GridFormat {
  kV1,  ///< One glyph per cell (human-diffable, large).
  kV2,  ///< Run-length encoded rows (default; compact for big worlds).
};

/// Writes the grid; throws IoError on stream failure.
void save_grid(const OccupancyGrid& grid, std::ostream& os,
               GridFormat format = GridFormat::kV2);
void save_grid(const OccupancyGrid& grid, const std::filesystem::path& path,
               GridFormat format = GridFormat::kV2);

/// Reads a grid (either version); throws IoError on malformed input.
OccupancyGrid load_grid(std::istream& is);
OccupancyGrid load_grid(const std::filesystem::path& path);

/// Renders the grid as ASCII art for examples/debugging, with optional
/// pose markers ('D' ground truth, 'P' estimate). Row with largest y
/// printed first so the output is a conventional top-down view.
std::string to_ascii(const OccupancyGrid& grid);

}  // namespace tofmcl::map
