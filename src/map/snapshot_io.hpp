#pragma once
/// \file snapshot_io.hpp
/// \brief Bounds-checked binary writer/reader for versioned snapshots.
///
/// The serving layer serializes live filter state (FilterState snapshots,
/// session eviction records) into compact binary blobs that must restore
/// BIT-IDENTICALLY: a restored session's trace has to continue exactly
/// where the snapshotted one left off. Decimal text round-trips cannot
/// guarantee that for floats, so every float/double travels as its raw
/// IEEE bit pattern (the binary equivalent of the repo's hexfloat trace
/// convention), serialized byte-by-byte in little-endian order so blobs
/// are portable across hosts regardless of native endianness.
///
/// The reader is defensive: every accessor bounds-checks and throws
/// common::IoError on truncation, so a corrupt or version-skewed blob is
/// rejected instead of read out of bounds. Version negotiation itself is
/// the caller's job (check_magic/peek are provided for it).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace tofmcl::map {

/// Append-only little-endian binary writer backing a snapshot blob.
class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw IEEE-754 bit patterns: exact round-trip by construction.
  void f32(float v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  const std::vector<std::byte>& bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked reader over a snapshot blob. Throws IoError on any
/// read past the end (truncated or corrupt snapshot).
class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  float f32();
  double f64();
  bool boolean() { return u8() != 0; }

  /// Bytes not yet consumed.
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void require(std::size_t n) const;

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace tofmcl::map
