#pragma once
/// \file rasterize.hpp
/// \brief Rasterization of a line-segment world into an occupancy grid.
///
/// The map used for localization is produced the way the paper produced
/// theirs: from (possibly inaccurate) wall measurements, rasterized at
/// 0.05 m resolution. Walls become Occupied cells; everything inside the
/// rasterized region is Free unless a margin of Unknown is requested.

#include "map/occupancy_grid.hpp"
#include "map/world.hpp"

namespace tofmcl::map {

/// Options controlling world→grid conversion.
struct RasterizeOptions {
  double resolution = 0.05;   ///< Cell edge (m), paper uses 0.05.
  double wall_thickness = 0.05;  ///< Physical wall thickness to paint (m).
  double margin = 0.15;       ///< Free border added around the world bounds (m).
  /// Fill state for cells not covered by walls. The paper's map is fully
  /// known inside the measured area.
  CellState interior_fill = CellState::kFree;
};

/// Rasterizes every wall segment of `world` into a fresh grid sized to the
/// world bounds plus margin. Cells whose center lies within
/// wall_thickness/2 of a segment become Occupied.
OccupancyGrid rasterize(const World& world, const RasterizeOptions& options);

/// Paints one segment into an existing grid (utility for tests and
/// incremental map construction).
void rasterize_segment(OccupancyGrid& grid, const Segment& segment,
                       double wall_thickness);

}  // namespace tofmcl::map
