#include "map/distance_map.hpp"

#include <cmath>

namespace tofmcl::map {

DistanceMap::DistanceMap(const OccupancyGrid& grid, double rmax)
    : width_(grid.width()),
      height_(grid.height()),
      resolution_(grid.resolution()),
      origin_(grid.origin()),
      rmax_(static_cast<float>(rmax)),
      values_(edt_meters(grid, rmax)) {}

QuantizedDistanceMap::QuantizedDistanceMap(const OccupancyGrid& grid,
                                           double rmax)
    : width_(grid.width()),
      height_(grid.height()),
      resolution_(grid.resolution()),
      origin_(grid.origin()),
      rmax_(static_cast<float>(rmax)),
      step_(static_cast<float>(rmax / 255.0)) {
  const std::vector<float> meters = edt_meters(grid, rmax);
  codes_.resize(meters.size());
  for (std::size_t i = 0; i < meters.size(); ++i) {
    const double code =
        std::round(static_cast<double>(meters[i]) / rmax * 255.0);
    codes_[i] = static_cast<std::uint8_t>(code);
  }
}

}  // namespace tofmcl::map
