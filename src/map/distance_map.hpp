#pragma once
/// \file distance_map.hpp
/// \brief Precomputed, truncated distance fields for the beam-endpoint model.
///
/// The paper's three map representations (Section III-C2):
///   * `DistanceMap`          — one 32-bit float per cell (fp32 / fp32qm
///                              baseline: 1 B occupancy + 4 B EDT = 5 B/cell)
///   * `QuantizedDistanceMap` — one 8-bit code per cell, linear scale over
///                              [0, rmax] (fp32qm / fp16qm: 1 B occupancy +
///                              1 B EDT = 2 B/cell)
///
/// Both are value types built from an OccupancyGrid; lookups are nearest
/// cell (no interpolation), exactly like the embedded implementation, and
/// out-of-map queries return the truncation distance rmax — the least
/// informative value, so off-map beam endpoints neither reward nor
/// eliminate a particle beyond what truncation already implies.

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "map/edt.hpp"
#include "map/occupancy_grid.hpp"

namespace tofmcl::map {

/// Full-precision truncated Euclidean distance field (meters).
class DistanceMap {
 public:
  /// Builds the field from the grid's occupied cells, truncated at rmax.
  DistanceMap(const OccupancyGrid& grid, double rmax);

  int width() const { return width_; }
  int height() const { return height_; }
  double resolution() const { return resolution_; }
  Vec2 origin() const { return origin_; }
  float rmax() const { return rmax_; }

  /// Distance (meters, ≤ rmax) at a world point; rmax when out of map.
  float distance_at(Vec2 world) const {
    const int cx =
        static_cast<int>(std::floor((world.x - origin_.x) / resolution_));
    const int cy =
        static_cast<int>(std::floor((world.y - origin_.y) / resolution_));
    if (cx < 0 || cx >= width_ || cy < 0 || cy >= height_) return rmax_;
    return values_[static_cast<std::size_t>(cy) *
                       static_cast<std::size_t>(width_) +
                   static_cast<std::size_t>(cx)];
  }

  const std::vector<float>& values() const { return values_; }
  /// Map payload bytes per cell for this representation (paper Fig 9
  /// accounting: 1 B occupancy + 4 B float distance).
  static constexpr std::size_t bytes_per_cell() { return 1 + sizeof(float); }

 private:
  int width_;
  int height_;
  double resolution_;
  Vec2 origin_;
  float rmax_;
  std::vector<float> values_;
};

/// 8-bit quantized truncated distance field.
///
/// Codes are a linear map of [0, rmax] onto [0, 255]:
///   code = round(d / rmax * 255),  d ≈ code * rmax / 255.
/// The worst-case dequantization error is rmax/255/2 ≈ 2.9 mm at
/// rmax = 1.5 m — far below the map resolution, which is why the paper
/// observes no accuracy loss (Section IV-C).
class QuantizedDistanceMap {
 public:
  QuantizedDistanceMap(const OccupancyGrid& grid, double rmax);

  int width() const { return width_; }
  int height() const { return height_; }
  double resolution() const { return resolution_; }
  Vec2 origin() const { return origin_; }
  float rmax() const { return rmax_; }
  /// Meters represented by one code step.
  float step() const { return step_; }

  /// Quantization code at a world point; 255 (== rmax) when out of map.
  std::uint8_t code_at(Vec2 world) const {
    const int cx =
        static_cast<int>(std::floor((world.x - origin_.x) / resolution_));
    const int cy =
        static_cast<int>(std::floor((world.y - origin_.y) / resolution_));
    if (cx < 0 || cx >= width_ || cy < 0 || cy >= height_) return 255;
    return codes_[static_cast<std::size_t>(cy) *
                      static_cast<std::size_t>(width_) +
                  static_cast<std::size_t>(cx)];
  }

  /// Reconstruction (meters) of one code under the map's round-to-nearest
  /// quantization rule: codes are bin CENTERS, so code k decodes to
  /// exactly k·step. This is the single source of truth shared by
  /// distance_at() and the likelihood LUT — evaluating the LUT at any
  /// other point (e.g. a bin edge) would silently disagree with the
  /// distances this map actually produces.
  static float reconstruct(std::uint8_t code, float step) {
    return static_cast<float>(code) * step;
  }
  float reconstruct(std::uint8_t code) const {
    return reconstruct(code, step_);
  }

  /// Dequantized distance (meters) at a world point.
  float distance_at(Vec2 world) const {
    return reconstruct(code_at(world));
  }

  const std::vector<std::uint8_t>& codes() const { return codes_; }
  /// Paper Fig 9 accounting: 1 B occupancy + 1 B quantized distance.
  static constexpr std::size_t bytes_per_cell() { return 1 + 1; }

 private:
  int width_;
  int height_;
  double resolution_;
  Vec2 origin_;
  float rmax_;
  float step_;
  std::vector<std::uint8_t> codes_;
};

}  // namespace tofmcl::map
